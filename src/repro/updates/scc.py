"""Incremental maintenance of the SCC condensation under graph deltas.

``compress`` (Section 5's reachability-preserving compression) is one of the
two big costs of preparing a graph for serving; recomputing it from scratch
for every small delta wastes almost all of that work.  This module patches a
:class:`~repro.graph.components.Condensation` — membership, the condensed
DAG, the inter-component edge multiplicities and the topological ranks — by
recomputing **only the affected condensed components**:

* an *intra-component* edge deletion may split its component → a local
  Tarjan pass over just that component's members;
* an *inter-component* edge insertion may create a cycle → a reachability
  probe on the DAG, contracting the components on the new cycle when it does;
* everything else (inter-component deletions, intra-component insertions,
  appended nodes) is pure bookkeeping on the edge multiplicities.

Correctness leans on the *canonical* component ids introduced in
:func:`repro.graph.components.condensation`: an id is the node-iteration
position of the component's earliest member, a function of the partition and
node order alone.  Patching therefore lands on exactly the ids (and, because
DAG adjacency is kept sorted, exactly the iteration orders) that a fresh
condensation of the mutated graph would produce — which is what makes
incrementally maintained answers bit-identical to a rebuild.

Node *removals* shift the positions of later nodes and would renumber
components globally; the maintainer refuses those (``apply`` returns
``None``) and the caller falls back to a full re-prepare.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.components import Condensation, strongly_connected_components
from repro.graph.digraph import NodeId
from repro.graph.protocol import GraphLike
from repro.graph.topology import TopologicalRankIndex
from repro.reachability.landmarks import selection_sort_key
from repro.updates.delta import AppliedDelta

DagEdge = Tuple[int, int]


class PatchResult:
    """What changed at the DAG level, for downstream index repair."""

    __slots__ = (
        "condensation",
        "rank_index",
        "changed_components",
        "added_components",
        "removed_components",
        "dirty_forward",
        "dirty_backward",
        "ranks_changed",
        "dag_degrees",
        "selection_order",
    )

    def __init__(
        self,
        condensation: Condensation,
        rank_index: TopologicalRankIndex,
        changed_components: Set[int],
        added_components: Set[int],
        removed_components: Set[int],
        dirty_forward: Set[int],
        dirty_backward: Set[int],
        ranks_changed: bool,
        dag_degrees: Optional[Dict[int, int]] = None,
        selection_order: Optional[List[int]] = None,
    ) -> None:
        self.condensation = condensation
        self.rank_index = rank_index
        #: Components whose member set changed (splits/merges), new ids.
        self.changed_components = changed_components
        #: Components that did not exist before the delta.
        self.added_components = added_components
        #: Old component ids that no longer exist.
        self.removed_components = removed_components
        #: DAG nodes whose *descendant* set or count may have changed.
        self.dirty_forward = dirty_forward
        #: DAG nodes whose *ancestor* set or count may have changed.
        self.dirty_backward = dirty_backward
        #: Whether any pre-existing component's topological rank changed
        #: (cached answers rely on rank guards; see engine invalidation).
        self.ranks_changed = ranks_changed
        #: Maintained per-component ``d(v)`` on the DAG — equal to
        #: ``dag.degree(v)``; the repair's selection rerun consumes it.
        self.dag_degrees = dag_degrees or {}
        #: All candidates sorted by the greedy-selection key (descending),
        #: identical to the order a fresh ``greedy_landmarks`` sort yields.
        self.selection_order = selection_order


def _sorted_insert(adjacency: Dict[NodeId, None], key: int) -> Dict[NodeId, None]:
    """Insert ``key`` into a sorted ordered-dict adjacency, keeping it sorted."""
    if not adjacency:
        return {key: None}
    rebuilt: Dict[NodeId, None] = {}
    placed = False
    for existing in adjacency:
        if not placed and key < existing:
            rebuilt[key] = None
            placed = True
        rebuilt[existing] = None
    if not placed:
        rebuilt[key] = None
    return rebuilt


def _sorted_insert_many(adjacency: Dict[NodeId, None], keys: List[int]) -> Dict[NodeId, None]:
    """Merge several new keys into a sorted adjacency in one rebuild.

    Hub components collect hundreds of new edges per delta; splicing them
    one by one would rebuild the hub's adjacency dict once per edge.
    """
    merged = sorted(keys)
    rebuilt: Dict[NodeId, None] = {}
    position = 0
    for existing in adjacency:
        while position < len(merged) and merged[position] < existing:
            rebuilt[merged[position]] = None
            position += 1
        rebuilt[existing] = None
    for key in merged[position:]:
        rebuilt[key] = None
    return rebuilt


class CondensationMaintainer:
    """Owns a condensation plus the bookkeeping needed to patch it in place.

    Built from a freshly compressed graph (:meth:`from_fresh`); thereafter
    :meth:`apply` absorbs one :class:`AppliedDelta` at a time.  The
    maintainer mutates the condensation's ``dag``/``membership``/``members``
    structures directly — callers treat the previous :class:`Condensation`
    object as consumed.
    """

    def __init__(
        self,
        condensation: Condensation,
        rank_index: TopologicalRankIndex,
        multiplicity: Dict[DagEdge, int],
        dag_degrees: Dict[int, int],
    ) -> None:
        self._condensation = condensation
        self._ranks: Dict[int, int] = rank_index.ranks()
        self._multiplicity = multiplicity
        self._dag_degrees = dag_degrees
        # Components whose *child set* changed during the current apply —
        # every one of them needs its rank re-derived (a changed child set
        # can change a rank without any rank change propagating to it).
        self._rank_seeds: Set[int] = set()
        # Components incident to any DAG edge change (degree recompute set).
        self._degree_seeds: Set[int] = set()
        # Incrementally maintained greedy-selection order: candidates sorted
        # descending by ``selection_sort_key`` (built on first apply, then
        # patched for the components whose key inputs changed).
        self._selection_order: Optional[List[int]] = None
        self._selection_keys: Dict[int, tuple] = {}
        self._selection_dirty: Set[int] = set()

    @classmethod
    def from_fresh(cls, graph: GraphLike, condensation: Condensation) -> "CondensationMaintainer":
        """Bootstrap the maintainer from a just-computed condensation."""
        membership = condensation.membership
        multiplicity: Dict[DagEdge, int] = {}
        for source, target in graph.edges():
            edge = (membership[source], membership[target])
            if edge[0] != edge[1]:
                multiplicity[edge] = multiplicity.get(edge, 0) + 1
        dag = condensation.dag
        rank_index = TopologicalRankIndex(dag)
        degrees = {node: dag.degree(node) for node in dag.nodes()}
        return cls(condensation, rank_index, multiplicity, degrees)

    def dag_mirror(self):
        """An order-insensitive CSR mirror of the current DAG, or ``None``.

        Built straight from the maintained edge multiset: component ids are
        ints, so the index mapping vectorises with ``searchsorted`` instead
        of a Python dict pass — the mirror costs a few milliseconds even on
        five-figure DAGs.  Only ever fed to the order-insensitive kernels.
        """
        try:
            import numpy as np

            from repro.graph.csr import CSRGraph
        except ImportError:  # pragma: no cover - numpy normally present
            return None

        ids = sorted(self._condensation.members)
        id_array = np.asarray(ids, dtype=np.int64)
        if self._multiplicity:
            pairs = np.asarray(list(self._multiplicity), dtype=np.int64)
            sources = np.searchsorted(id_array, pairs[:, 0])
            targets = np.searchsorted(id_array, pairs[:, 1])
        else:
            sources = np.empty(0, dtype=np.int64)
            targets = np.empty(0, dtype=np.int64)
        # The mirror only feeds the reachability kernels; its labels are
        # never consulted, so skip the per-node label interning pass.
        return CSRGraph.from_index_arrays(
            ids, [""], np.zeros(len(ids), dtype=np.int64), sources, targets
        )

    # ------------------------------------------------------------------ #
    # DAG surgery helpers
    # ------------------------------------------------------------------ #
    def _dag_add_edge(self, source: int, target: int) -> None:
        # Raw sorted splice instead of ``add_edge`` + rebuild: the edge is
        # known absent, so one O(deg) insertion per side keeps the canonical
        # sorted adjacency order.
        dag = self._condensation.dag
        dag._succ[source] = _sorted_insert(dag._succ[source], target)
        dag._pred[target] = _sorted_insert(dag._pred[target], source)
        dag._edge_count += 1
        self._rank_seeds.add(source)
        self._degree_seeds.add(source)
        self._degree_seeds.add(target)

    def _dag_remove_edge(self, source: int, target: int) -> None:
        self._condensation.dag.remove_edge(source, target)
        self._rank_seeds.add(source)
        self._degree_seeds.add(source)
        self._degree_seeds.add(target)

    def _dag_remove_node(self, component: int) -> None:
        dag = self._condensation.dag
        for target in list(dag.successors(component)):
            self._multiplicity.pop((component, target), None)
        for source in list(dag.predecessors(component)):
            self._multiplicity.pop((source, component), None)
            self._rank_seeds.add(source)
            self._degree_seeds.add(source)
        for target in dag.successors(component):
            self._degree_seeds.add(target)
        dag.remove_node(component)
        self._ranks.pop(component, None)
        self._dag_degrees.pop(component, None)

    def _dag_reachable(self, source: int, target: int) -> bool:
        """BFS reachability on the (possibly momentarily cyclic) DAG."""
        if source == target:
            return True
        dag = self._condensation.dag
        seen = {source}
        queue: deque = deque([source])
        while queue:
            node = queue.popleft()
            for child in dag.successors(node):
                if child == target:
                    return True
                if child not in seen:
                    seen.add(child)
                    queue.append(child)
        return False

    def _rescan_component_edges(self, component: int, graph: GraphLike) -> None:
        """Recompute every DAG edge and multiplicity incident to ``component``."""
        condensation = self._condensation
        dag = condensation.dag
        membership = condensation.membership
        for target in list(dag.successors(component)):
            self._multiplicity.pop((component, target), None)
            self._dag_remove_edge(component, target)
        for source in list(dag.predecessors(component)):
            self._multiplicity.pop((source, component), None)
            self._dag_remove_edge(source, component)
        out_counts: Dict[int, int] = {}
        in_counts: Dict[int, int] = {}
        for member in condensation.members[component]:
            for child in graph.successors(member):
                other = membership[child]
                if other != component:
                    out_counts[other] = out_counts.get(other, 0) + 1
            for parent in graph.predecessors(member):
                other = membership[parent]
                if other != component:
                    in_counts[other] = in_counts.get(other, 0) + 1
        # Batch-rebuild the component's own adjacency (one sorted pass), and
        # splice the component into each neighbour's adjacency once — a hub
        # component re-inserted edge by edge would cost O(deg²).
        for target, count in out_counts.items():
            self._multiplicity[(component, target)] = count
            dag._pred[target] = _sorted_insert(dag._pred[target], component)
            self._rank_seeds.add(component)
            self._degree_seeds.add(target)
        for source, count in in_counts.items():
            self._multiplicity[(source, component)] = count
            dag._succ[source] = _sorted_insert(dag._succ[source], component)
            self._rank_seeds.add(source)
            self._degree_seeds.add(source)
        dag._succ[component] = {target: None for target in sorted(out_counts)}
        dag._pred[component] = {source: None for source in sorted(in_counts)}
        dag._edge_count += len(out_counts) + len(in_counts)
        self._rank_seeds.add(component)
        self._degree_seeds.add(component)

    # ------------------------------------------------------------------ #
    # The patch
    # ------------------------------------------------------------------ #
    def apply(self, graph: GraphLike, applied: AppliedDelta) -> Optional[PatchResult]:
        """Patch the condensation for one applied delta.

        ``graph`` is the substrate *after* the delta.  Returns ``None`` when
        the delta cannot be patched (node removals, see module docstring);
        the caller must then rebuild from scratch.  On success the owned
        condensation/rank structures are updated in place and summarised in
        the returned :class:`PatchResult`.
        """
        if applied.nodes_removed:
            return None

        self._rank_seeds = set()
        self._degree_seeds = set()
        self._selection_dirty = set()
        condensation = self._condensation
        dag = condensation.dag
        membership: Dict[NodeId, int] = condensation.membership  # type: ignore[assignment]
        members: Dict[int, Set[NodeId]] = condensation.members  # type: ignore[assignment]

        changed: Set[int] = set()
        added: Set[int] = set()
        removed: Set[int] = set()
        seed_sources: Set[int] = set()
        seed_targets: Set[int] = set()
        position: Optional[Dict[NodeId, int]] = None

        def positions() -> Dict[NodeId, int]:
            nonlocal position
            if position is None:
                position = {node: i for i, node in enumerate(graph.nodes())}
            return position

        # Appended nodes become singleton components; their canonical id is
        # their node position, which (no removals) is simply |V_before| + i.
        if applied.nodes_added:
            next_position = graph.num_nodes() - len(applied.nodes_added)
            for node in applied.nodes_added:
                component = next_position
                next_position += 1
                membership[node] = component
                members[component] = {node}
                dag.add_node(component, graph.label(node))
                self._ranks[component] = 0
                self._dag_degrees[component] = 0
                added.add(component)

        # --- net effect per distinct graph edge --------------------------- #
        # The same edge may appear several times across the add/remove logs
        # (removed then re-inserted, ...).  Effective ops strictly alternate
        # the edge's presence, so parity recovers the pre-delta state and the
        # net structural change is -1, 0 or +1.
        op_counts: Dict[Tuple[NodeId, NodeId], int] = {}
        for edge in applied.edges_added:
            op_counts[edge] = op_counts.get(edge, 0) + 1
        for edge in applied.edges_removed:
            op_counts[edge] = op_counts.get(edge, 0) + 1
        net_removed: List[Tuple[int, int, NodeId, NodeId]] = []
        net_added: List[Tuple[NodeId, NodeId]] = []
        for (source, target), count in op_counts.items():
            present = graph.has_edge(source, target)
            before = present if count % 2 == 0 else not present
            if before == present:
                continue
            source_component = membership[source]
            target_component = membership[target]
            if present:
                net_added.append((source, target))
            else:
                net_removed.append((source_component, target_component, source, target))

        # --- deletions: multiplicity bookkeeping, plus split checks ------- #
        needs_split_check: Set[int] = set()
        for source_component, target_component, source, target in net_removed:
            if source_component == target_component:
                if source != target:  # a self-loop never binds a component
                    needs_split_check.add(source_component)
                continue
            edge = (source_component, target_component)
            count = self._multiplicity.get(edge, 0) - 1
            if count > 0:
                self._multiplicity[edge] = count
            else:
                self._multiplicity.pop(edge, None)
                if dag.has_edge(*edge):
                    self._dag_remove_edge(*edge)
                seed_sources.add(source_component)
                seed_targets.add(target_component)

        # Splits: local Tarjan over just the affected component's members,
        # against the *final* adjacency.
        rescanned: Set[int] = set()
        for component in needs_split_check:
            if len(members[component]) == 1:
                continue
            parts = strongly_connected_components(graph, restrict=members[component])
            if len(parts) == 1:
                continue
            self._dag_remove_node(component)
            del members[component]
            removed.add(component)
            new_ids = []
            for part in parts:
                representative = min(part, key=positions().__getitem__)
                new_id = positions()[representative]
                members[new_id] = part
                for node in part:
                    membership[node] = new_id
                dag.add_node(new_id, graph.label(representative))
                self._ranks[new_id] = 0
                new_ids.append(new_id)
            for new_id in new_ids:
                self._rescan_component_edges(new_id, graph)
            rescanned.update(new_ids)
            # The old id survives as the sub-component keeping the earliest
            # member, so it is changed rather than removed.
            removed -= set(new_ids)
            changed.update(new_ids)

        # --- insertions: multiplicities (skipping rescanned components,
        # whose incident edges were already recounted), then contraction --- #
        merge_probes: List[Tuple[NodeId, NodeId]] = []
        batch_succ: Dict[int, List[int]] = {}
        batch_pred: Dict[int, List[int]] = {}
        for source, target in net_added:
            source_component = membership[source]
            target_component = membership[target]
            if source_component == target_component:
                continue
            merge_probes.append((source, target))
            if source_component in rescanned or target_component in rescanned:
                seed_sources.add(source_component)
                seed_targets.add(target_component)
                continue
            edge = (source_component, target_component)
            count = self._multiplicity.get(edge)
            if count is not None:
                self._multiplicity[edge] = count + 1
            else:
                self._multiplicity[edge] = 1
                batch_succ.setdefault(source_component, []).append(target_component)
                batch_pred.setdefault(target_component, []).append(source_component)
                seed_sources.add(source_component)
                seed_targets.add(target_component)
        # One sorted rebuild per touched adjacency (hub components receive
        # many edges per delta; per-edge splicing would be quadratic).
        for source_component, targets in batch_succ.items():
            dag._succ[source_component] = _sorted_insert_many(dag._succ[source_component], targets)
            self._rank_seeds.add(source_component)
            self._degree_seeds.add(source_component)
        for target_component, sources in batch_pred.items():
            dag._pred[target_component] = _sorted_insert_many(dag._pred[target_component], sources)
            self._degree_seeds.add(target_component)
        dag._edge_count += sum(len(targets) for targets in batch_succ.values())

        merged_any = True
        while merged_any:
            merged_any = False
            for source, target in merge_probes:
                source_component = membership[source]
                target_component = membership[target]
                if source_component == target_component:
                    continue
                if not self._dag_reachable(target_component, source_component):
                    continue
                cycle = self._cycle_components(target_component, source_component)
                self._contract(cycle, graph, positions(), changed, removed)
                merged_any = True

        changed -= removed
        added -= removed

        # --- relabels: refresh DAG labels whose representative changed ---- #
        for node in applied.relabeled:
            component = membership[node]
            representative = min(members[component], key=positions().__getitem__)
            if representative == node:
                dag.add_node(component, graph.label(node))

        # --- ranks: worklist recompute from the disturbed region ---------- #
        rank_seeds = set(changed) | set(added) | (self._rank_seeds & set(members))
        ranks_changed = self._recompute_ranks(rank_seeds, fresh=set(changed) | set(added))
        max_rank = max(self._ranks.values()) if self._ranks else 0

        # Degrees of every component whose DAG adjacency may have changed.
        for component in (set(changed) | set(added) | self._degree_seeds) & set(members):
            degree = dag.degree(component)
            if self._dag_degrees.get(component) != degree:
                self._dag_degrees[component] = degree
                self._selection_dirty.add(component)
        for component in list(self._dag_degrees):
            if component not in members:
                del self._dag_degrees[component]
        max_degree = max(self._dag_degrees.values()) if self._dag_degrees else 0

        rank_index = TopologicalRankIndex.from_parts(dag, dict(self._ranks), max_rank, max_degree)

        # --- greedy-selection order, patched for disturbed keys ----------- #
        self._selection_dirty |= changed | added | removed
        selection_order = self._refresh_selection_order()

        # --- dirty closures for index repair ------------------------------ #
        all_seed_sources = (seed_sources & set(members)) | changed | added
        all_seed_targets = (seed_targets & set(members)) | changed | added
        dirty_forward = self._closure(all_seed_sources, forward=False)
        dirty_backward = self._closure(all_seed_targets, forward=True)

        return PatchResult(
            condensation=condensation,
            rank_index=rank_index,
            changed_components=changed,
            added_components=added,
            removed_components=removed,
            dirty_forward=dirty_forward,
            dirty_backward=dirty_backward,
            ranks_changed=ranks_changed,
            dag_degrees=dict(self._dag_degrees),
            selection_order=selection_order,
        )

    # ------------------------------------------------------------------ #
    # Merge machinery
    # ------------------------------------------------------------------ #
    def _cycle_components(self, start: int, goal: int) -> Set[int]:
        """Components on some ``start`` → ``goal`` DAG path (both inclusive)."""
        descendants = self._closure({start}, forward=True)
        ancestors = self._closure({goal}, forward=False)
        cycle = descendants & ancestors
        cycle.add(start)
        cycle.add(goal)
        return cycle

    def _closure(self, seeds: Set[int], forward: bool) -> Set[int]:
        """Multi-source closure over the DAG (seeds included)."""
        dag = self._condensation.dag
        seen = set(seeds)
        queue: deque = deque(seeds)
        step = dag.successors if forward else dag.predecessors
        while queue:
            node = queue.popleft()
            for neighbor in step(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return seen

    def _contract(
        self,
        cycle: Set[int],
        graph: GraphLike,
        position: Dict[NodeId, int],
        changed: Set[int],
        removed: Set[int],
    ) -> None:
        """Contract a set of mutually reachable components into one."""
        condensation = self._condensation
        membership: Dict[NodeId, int] = condensation.membership  # type: ignore[assignment]
        members: Dict[int, Set[NodeId]] = condensation.members  # type: ignore[assignment]
        dag = condensation.dag

        merged_id = min(cycle)
        union: Set[NodeId] = set()
        for component in cycle:
            union.update(members[component])
        for component in cycle:
            self._dag_remove_node(component)
            del members[component]
            if component != merged_id:
                removed.add(component)
        members[merged_id] = union
        for node in union:
            membership[node] = merged_id
        representative = min(union, key=position.__getitem__)
        dag.add_node(merged_id, graph.label(representative))
        self._ranks[merged_id] = 0
        self._rescan_component_edges(merged_id, graph)
        self._dag_degrees[merged_id] = dag.degree(merged_id)
        changed.add(merged_id)

    # ------------------------------------------------------------------ #
    # Selection order
    # ------------------------------------------------------------------ #
    def _selection_key(self, component: int) -> tuple:
        return selection_sort_key(
            component,
            self._dag_degrees[component],
            self._ranks[component],
            float(len(self._condensation.members[component])),
        )

    def _refresh_selection_order(self) -> List[int]:
        """The greedy candidate order after this apply (see PatchResult).

        Built once with a full sort, then maintained by extracting the
        components whose key inputs (degree, rank, SCC size, existence)
        changed and merging their re-sorted keys back in — O(K) per apply
        instead of O(K log K), with cached key tuples making the merge
        comparisons free.
        """
        members = self._condensation.members
        if self._selection_order is None:
            self._selection_keys = {component: self._selection_key(component) for component in members}
            self._selection_order = sorted(members, key=self._selection_keys.__getitem__)
            return list(self._selection_order)
        dirty = self._selection_dirty
        if dirty:
            keys = self._selection_keys
            for component in dirty:
                if component in members:
                    keys[component] = self._selection_key(component)
                else:
                    keys.pop(component, None)
            survivors = [component for component in self._selection_order if component not in dirty]
            refreshed = sorted(
                (component for component in dirty if component in members),
                key=keys.__getitem__,
            )
            merged: List[int] = []
            i = j = 0
            while i < len(survivors) and j < len(refreshed):
                if keys[survivors[i]] <= keys[refreshed[j]]:
                    merged.append(survivors[i])
                    i += 1
                else:
                    merged.append(refreshed[j])
                    j += 1
            merged.extend(survivors[i:])
            merged.extend(refreshed[j:])
            self._selection_order = merged
        return list(self._selection_order)

    # ------------------------------------------------------------------ #
    # Ranks
    # ------------------------------------------------------------------ #
    def _recompute_ranks(self, seeds: Set[int], fresh: Set[int]) -> bool:
        """Fixpoint recomputation of ``v.r`` from the disturbed components.

        Returns whether any component that already existed before the delta
        ended up with a different rank (``fresh`` components — just created
        by the patch — don't count: they had no previous rank to preserve).
        """
        dag = self._condensation.dag
        ranks = self._ranks
        queue: deque = deque(component for component in seeds if component in self._condensation.members)
        queued = set(queue)
        changed_existing = False
        while queue:
            component = queue.popleft()
            queued.discard(component)
            children = dag.successors(component)
            new_rank = 0 if not children else 1 + max(ranks[child] for child in children)
            if ranks.get(component) == new_rank:
                continue
            if component not in fresh:
                changed_existing = True
            self._selection_dirty.add(component)
            ranks[component] = new_rank
            for parent in dag.predecessors(component):
                if parent not in queued:
                    queued.add(parent)
                    queue.append(parent)
        return changed_existing


__all__ = ["CondensationMaintainer", "PatchResult"]
