"""Workloads: surrogate datasets, synthetic series, query and delta generators."""

from repro.workloads.deltas import DeltaStream, generate_delta_stream
from repro.workloads.datasets import (
    YAHOO_PAPER_SIZE,
    YOUTUBE_PAPER_SIZE,
    DatasetSpec,
    available_datasets,
    dataset_spec,
    load_dataset,
    scale_alpha,
    synthetic,
    synthetic_series,
    yahoo_like,
    youtube_like,
)
from repro.workloads.queries import (
    PAPER_QUERY_SHAPES,
    PatternQueryInstance,
    PatternWorkload,
    ReachabilityWorkload,
    generate_pattern_workload,
    generate_reachability_workload,
)

__all__ = [
    "DeltaStream",
    "generate_delta_stream",
    "YAHOO_PAPER_SIZE",
    "YOUTUBE_PAPER_SIZE",
    "DatasetSpec",
    "available_datasets",
    "dataset_spec",
    "load_dataset",
    "scale_alpha",
    "synthetic",
    "synthetic_series",
    "yahoo_like",
    "youtube_like",
    "PAPER_QUERY_SHAPES",
    "PatternQueryInstance",
    "PatternWorkload",
    "ReachabilityWorkload",
    "generate_pattern_workload",
    "generate_reachability_workload",
]
