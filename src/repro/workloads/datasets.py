"""Dataset registry: surrogate real-life graphs and the paper's synthetic series.

The paper evaluates on a Youtube recommendation graph (1.6M nodes, 4.5M
edges) and a Yahoo web snapshot (3M nodes, 15M edges).  Those crawls are not
redistributable and are far beyond what a pure-Python harness can traverse
hundreds of times, so this module provides *surrogates*: synthetic graphs
whose structural properties (degree skew, density ratio between the two
datasets, label skew, small diameter) match what the paper's algorithms
exploit, at a scale where the full experiment grid runs in minutes.  See
DESIGN.md ("Substitutions") for the full rationale.

Resource ratios are rescaled accordingly: the paper's α ∈ [1.1e-5, 2e-5] on a
~6M-item graph corresponds to an absolute budget of roughly 65–120 nodes and
edges; :func:`scale_alpha` maps a paper α to the α giving the same absolute
budget on a surrogate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.exceptions import WorkloadError
from repro.graph.digraph import DiGraph
from repro.graph.io import BACKENDS
from repro.graph.protocol import GraphLike
from repro.graph.generators import (
    DEFAULT_ALPHABET,
    preferential_attachment_graph,
    random_graph,
)

YOUTUBE_PAPER_SIZE = 1_609_969 + 4_509_826
"""|G| of the paper's Youtube dataset (nodes + edges)."""

YAHOO_PAPER_SIZE = 3_000_022 + 14_979_447
"""|G| of the paper's Yahoo dataset (nodes + edges)."""


@dataclass(frozen=True)
class DatasetSpec:
    """Description of a named dataset and how to build it."""

    name: str
    description: str
    paper_size: Optional[int]
    builder: Callable[[int], DiGraph]

    def build(self, seed: int = 7, backend: str = "digraph") -> GraphLike:
        """Materialise the dataset graph on the requested backend.

        ``backend="csr"`` freezes the generated graph into a
        :class:`~repro.graph.csr.CSRGraph` (order-preserving, so query
        answers match the mutable backend exactly).
        """
        if backend not in BACKENDS:
            raise WorkloadError(
                f"unknown graph backend {backend!r}; available: {', '.join(BACKENDS)}"
            )
        graph = self.builder(seed)
        if backend == "csr":
            from repro.graph.csr import CSRGraph  # deferred: needs numpy

            return CSRGraph.from_digraph(graph)
        return graph


def youtube_like(seed: int = 7, num_nodes: int = 20_000) -> DiGraph:
    """Surrogate for the Youtube recommendation graph.

    Preferential attachment with ~2.8 average degree (matching Youtube's
    4.5M/1.6M ≈ 2.8), skewed content labels, and a mostly acyclic link
    structure (recommendation links point to established videos) so that the
    condensation keeps a deep hierarchy — see DESIGN.md for the rationale.
    """
    return preferential_attachment_graph(
        num_nodes=num_nodes,
        edges_per_node=2,
        seed=seed,
        label_skew=1.0,
        back_edge_probability=0.06,
    )


def yahoo_like(seed: int = 11, num_nodes: int = 30_000) -> DiGraph:
    """Surrogate for the Yahoo web graph (denser: avg degree ≈ 5)."""
    return preferential_attachment_graph(
        num_nodes=num_nodes,
        edges_per_node=4,
        seed=seed,
        label_skew=0.8,
        back_edge_probability=0.04,
    )


def synthetic(num_nodes: int, seed: int = 3) -> DiGraph:
    """The paper's synthetic generator: |E| = 2|V|, 15 labels."""
    return random_graph(
        num_nodes=num_nodes,
        num_edges=2 * num_nodes,
        alphabet=DEFAULT_ALPHABET,
        seed=seed,
        label_skew=0.5,
    )


def synthetic_series(sizes: List[int], seed: int = 3) -> Dict[int, DiGraph]:
    """Synthetic graphs for the |V|-scaling experiments (Fig. 8(i)/(j)/(o)/(p))."""
    return {size: synthetic(size, seed=seed + index) for index, size in enumerate(sizes)}


_REGISTRY: Dict[str, DatasetSpec] = {
    "youtube": DatasetSpec(
        name="youtube",
        description="Surrogate of the Youtube recommendation graph (scale-free, avg degree ~2.8)",
        paper_size=YOUTUBE_PAPER_SIZE,
        builder=lambda seed: youtube_like(seed=seed),
    ),
    "yahoo": DatasetSpec(
        name="yahoo",
        description="Surrogate of the Yahoo web graph (scale-free, avg degree ~5)",
        paper_size=YAHOO_PAPER_SIZE,
        builder=lambda seed: yahoo_like(seed=seed),
    ),
    "youtube-small": DatasetSpec(
        name="youtube-small",
        description="Small Youtube surrogate for fast tests and CI",
        paper_size=YOUTUBE_PAPER_SIZE,
        builder=lambda seed: youtube_like(seed=seed, num_nodes=3_000),
    ),
    "yahoo-small": DatasetSpec(
        name="yahoo-small",
        description="Small Yahoo surrogate for fast tests and CI",
        paper_size=YAHOO_PAPER_SIZE,
        builder=lambda seed: yahoo_like(seed=seed, num_nodes=4_000),
    ),
}


def available_datasets() -> List[str]:
    """Names of the registered datasets."""
    return sorted(_REGISTRY)


def dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset by name; raises :class:`WorkloadError` when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        ) from None


def load_dataset(name: str, seed: int = 7, backend: str = "digraph") -> GraphLike:
    """Build a registered dataset graph on the chosen backend.

    ``backend`` is ``"digraph"`` (mutable dict-of-sets, the default) or
    ``"csr"`` (immutable compressed-sparse-row; fastest for query answering).
    """
    return dataset_spec(name).build(seed=seed, backend=backend)


def scale_alpha(paper_alpha: float, paper_size: int, surrogate_size: int, minimum: float = 1e-6) -> float:
    """Map a paper resource ratio onto a surrogate of different size.

    The paper's α is tied to absolute budgets (``alpha * |G|`` items); this
    keeps that absolute budget constant:  ``alpha' = alpha * |G_paper| / |G_surrogate|``,
    clamped into ``(minimum, 1)``.
    """
    if paper_size <= 0 or surrogate_size <= 0:
        raise WorkloadError("graph sizes must be positive")
    scaled = paper_alpha * paper_size / surrogate_size
    return min(1.0, max(minimum, scaled))
