"""Delta-stream workloads: seeded churn for the dynamic-graph scenario.

A *delta stream* is a sequence of :class:`~repro.updates.GraphDelta`
batches simulating a graph mutating under traffic.  Two mixes model the
churn patterns streaming-graph systems distinguish:

* ``"growth"`` — new nodes attach to existing ones and recently added
  attachments occasionally disappear; the pre-existing core is never
  rewired.  This is the append-mostly social/recommendation-graph pattern:
  no delta can merge or split an old strongly connected component, so the
  incremental machinery keeps almost everything.
* ``"uniform"`` — edges are inserted between, and removed from, uniformly
  random endpoints; node insertion/removal is rare.  This is the
  adversarial pattern: deletions can split strongly connected components
  and insertions can merge them, and hub-adjacent changes dirty large
  reachability cones.

Generation is driven entirely by one ``random.Random(seed)`` and a working
copy of the graph, so the same seed yields the identical stream on every
machine — the property the update benchmark and CI gate rely on.

``confine_nodes`` restricts every sampled endpoint (attachment targets,
rewired edges, removal victims) to the given node set — newcomers join it —
which confines the churn to one region of the graph.  The sharded serving
layer uses this for locality experiments: churn confined to one shard's
core flows through that shard's incremental update path, while unconfined
churn exercises cross-shard rebuild routing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Collection, Iterator, List, Optional

from repro.exceptions import WorkloadError
from repro.graph.digraph import DiGraph, NodeId
from repro.graph.protocol import GraphLike
from repro.updates.delta import GraphDelta

MIXES = ("growth", "uniform")


@dataclass
class DeltaStream:
    """A replayable sequence of deltas plus the graph state they end on."""

    mix: str
    deltas: List[GraphDelta] = field(default_factory=list)
    #: The mutated graph after every delta (a working DiGraph copy).
    final_graph: DiGraph = field(default_factory=DiGraph)

    def __len__(self) -> int:
        return len(self.deltas)

    def __iter__(self) -> Iterator[GraphDelta]:
        return iter(self.deltas)

    def total_ops(self) -> int:
        """Total mutation count across every batch."""
        return sum(delta.size() for delta in self.deltas)


def _working_copy(graph: GraphLike) -> DiGraph:
    if isinstance(graph, DiGraph):
        return graph.copy()
    copy = DiGraph()
    for node in graph.nodes():
        copy.add_node(node, graph.label(node))
    for source, target in graph.edges():
        copy.add_edge(source, target)
    return copy


def generate_delta_stream(
    graph: GraphLike,
    batches: int = 10,
    ops_per_batch: int = 50,
    mix: str = "growth",
    seed: int = 0,
    node_removal_rate: float = 0.0,
    confine_nodes: Optional[Collection[NodeId]] = None,
) -> DeltaStream:
    """Generate ``batches`` deltas of ``ops_per_batch`` ops each.

    Every op is valid at the point it appears (the generator maintains a
    working copy), so replaying the stream through ``QueryEngine.update``
    or ``GraphDelta.apply_to`` never raises.  ``node_removal_rate`` mixes in
    node removals (which force the engine onto its full-rebuild path); the
    default stream is removal-free, matching edge-churn workloads.
    ``confine_nodes`` restricts all endpoint sampling to the given subset of
    the graph (see the module docstring) — the same seed still yields the
    identical stream for the identical confinement set.
    """
    if mix not in MIXES:
        raise WorkloadError(f"unknown delta mix {mix!r}; available: {', '.join(MIXES)}")
    if batches <= 0 or ops_per_batch <= 0:
        raise WorkloadError("batches and ops_per_batch must be positive")
    if not 0 <= node_removal_rate < 1:
        raise WorkloadError("node_removal_rate must be in [0, 1)")

    rng = random.Random(seed)
    working = _working_copy(graph)
    if working.num_nodes() < 2:
        raise WorkloadError("graph too small for a delta stream")
    nodes: List[NodeId] = list(working.nodes())
    confined: Optional[set] = None
    if confine_nodes is not None:
        confined = set(confine_nodes)
        present = [node for node in nodes if node in confined]
        if len(present) < 2:
            raise WorkloadError("confine_nodes must name at least 2 graph nodes")
        unknown = confined - set(nodes)
        if unknown:
            raise WorkloadError(
                f"confine_nodes references {len(unknown)} node(s) not in the graph"
            )
        # Keep the pool in graph iteration order so the stream is a pure
        # function of (graph, confinement set, seed).
        nodes = present
    newcomers: List[NodeId] = []
    recent_edges: List = []
    fresh_serial = 0
    stream = DeltaStream(mix=mix)
    # Preferential attachment for the growth mix: most new links land on a
    # small trending pool of high-degree nodes (the viral-content pattern),
    # the rest are uniform.  Sampled once per stream, deterministically.
    trending: List[NodeId] = sorted(
        rng.sample(nodes, min(len(nodes), 200)),
        key=lambda node: (-working.degree(node), repr(node)),
    )[:50]

    def growth_target() -> NodeId:
        if trending and rng.random() < 0.8:
            return rng.choice(trending)
        return rng.choice(nodes)

    for _ in range(batches):
        delta = GraphDelta()
        attempts = 0
        # ``ops_per_batch`` bounds the *emitted* delta size (a growth
        # node-attach emits two ops: add_node + add_edge), so downstream
        # "delta ≤ x% of |E|" claims hold for delta.size(), not a proxy.
        while delta.size() < ops_per_batch and attempts < ops_per_batch * 20:
            attempts += 1
            remaining = ops_per_batch - delta.size()
            roll = rng.random()
            if node_removal_rate and roll < node_removal_rate:
                victim = rng.choice(nodes)
                if working.num_nodes() > 2 and victim in working:
                    delta.remove_node(victim)
                    working.remove_node(victim)
                    # Purge the victim from *every* sampling pool, or later
                    # ops would target a deleted node and raise.
                    nodes = [node for node in nodes if node != victim]
                    newcomers = [node for node in newcomers if node != victim]
                    trending = [node for node in trending if node != victim]
                    recent_edges = [edge for edge in recent_edges if victim not in edge]
                continue
            roll = rng.random()
            if mix == "growth":
                # Edges only ever leave *newcomers*, so the pre-existing
                # core is never rewired: no old component can merge or
                # split, which is exactly the append-mostly churn shape.
                if (roll < 0.5 or not newcomers) and remaining >= 2:
                    fresh_serial += 1
                    newcomer = f"u{seed}-{fresh_serial}"
                    label = rng.choice("ABCDE")
                    delta.add_node(newcomer, label=label)
                    working.add_node(newcomer, label)
                    target = growth_target()
                    delta.add_edge(newcomer, target)
                    working.add_edge(newcomer, target)
                    recent_edges.append((newcomer, target))
                    newcomers.append(newcomer)
                    nodes.append(newcomer)
                    if confined is not None:
                        confined.add(newcomer)
                elif newcomers and roll < 0.85:
                    source = rng.choice(newcomers)
                    target = growth_target()
                    if source != target and not working.has_edge(source, target):
                        delta.add_edge(source, target)
                        working.add_edge(source, target)
                        recent_edges.append((source, target))
                elif recent_edges:
                    source, target = recent_edges.pop(rng.randrange(len(recent_edges)))
                    if working.has_edge(source, target):
                        delta.remove_edge(source, target)
                        working.remove_edge(source, target)
            else:  # uniform
                if roll < 0.5:
                    source, target = rng.choice(nodes), rng.choice(nodes)
                    if source != target and not working.has_edge(source, target):
                        delta.add_edge(source, target)
                        working.add_edge(source, target)
                else:
                    # Sample an existing edge without materialising the edge
                    # list: a few node probes, deterministic under the seed.
                    for _ in range(16):
                        source = rng.choice(nodes)
                        successors = list(working.successors(source))
                        if confined is not None:
                            # Both endpoints must stay inside the pool, or the
                            # removal would name a node outside the confinement.
                            successors = [
                                target for target in successors if target in confined
                            ]
                        if successors:
                            target = rng.choice(successors)
                            delta.remove_edge(source, target)
                            working.remove_edge(source, target)
                            break
        if delta.size():
            stream.deltas.append(delta)
    if not stream.deltas:
        raise WorkloadError("generated an empty delta stream; raise ops_per_batch")
    stream.final_graph = working
    return stream


__all__ = ["DeltaStream", "MIXES", "generate_delta_stream"]
