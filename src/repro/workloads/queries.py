"""Query workloads: pattern suites and reachability pair samplers (Section 6).

Pattern workloads follow the paper's setup: queries of shape ``(|Vp|, |Ep|)``
with labels drawn from the data graph, a randomly chosen personalized node
(whose match in the data graph is unique) and a randomly chosen output node.

Reachability workloads sample ordered node pairs; to make accuracy numbers
informative the sampler balances positive pairs (the target is reachable)
and negative pairs, because a purely uniform sample of a sparse graph is
dominated by unreachable pairs and every algorithm trivially scores ~100%.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.exceptions import WorkloadError
from repro.graph.digraph import NodeId
from repro.graph.protocol import GraphLike
from repro.graph.traversal import is_reachable
from repro.patterns.generator import embedded_pattern
from repro.patterns.pattern import GraphPattern

PAPER_QUERY_SHAPES: List[Tuple[int, int]] = [(4, 8), (5, 10), (6, 12), (7, 14), (8, 16)]
"""The query shapes swept in Fig. 8(e)–(h)."""


def _digest(*parts: object) -> str:
    """Stable hex digest of a sequence of ``repr``-able parts.

    Uses sha1 over canonical ``repr`` strings rather than Python's ``hash``
    so fingerprints agree across processes regardless of hash randomisation
    — the engine's worker pools and its answer cache both rely on that.
    """
    hasher = hashlib.sha1()
    for part in parts:
        hasher.update(repr(part).encode("utf-8"))
        hasher.update(b"\x1f")
    return hasher.hexdigest()


def reachability_fingerprint(source: NodeId, target: NodeId) -> str:
    """Stable identity of the reachability query ``(source, target)``."""
    return _digest("reach", source, target)


def pattern_fingerprint(pattern: GraphPattern, personalized_match: NodeId) -> str:
    """Stable identity of a pattern query pinned to its personalized match.

    Edge order is part of the identity: the budgeted reduction's tie-breaking
    follows stored adjacency order, so two patterns that differ only in edge
    order are *not* interchangeable under a resource bound.
    """
    return _digest(
        "pattern",
        sorted((repr(node), repr(label)) for node, label in pattern.labels.items()),
        pattern.edges,
        pattern.personalized,
        pattern.output,
        personalized_match,
    )


@dataclass
class PatternQueryInstance:
    """One pattern query: the pattern plus the personalized node's data match."""

    pattern: GraphPattern
    personalized_match: NodeId

    @property
    def shape(self) -> Tuple[int, int]:
        """The ``(|Vp|, |Ep|)`` shape of the pattern."""
        return self.pattern.shape()

    def fingerprint(self) -> str:
        """Stable identity used by the engine's answer cache."""
        return pattern_fingerprint(self.pattern, self.personalized_match)


@dataclass
class PatternWorkload:
    """A suite of pattern queries of a fixed shape over one graph."""

    graph: GraphLike
    shape: Tuple[int, int]
    queries: List[PatternQueryInstance] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)


def generate_pattern_workload(
    graph: GraphLike,
    shape: Tuple[int, int],
    count: int = 5,
    seed: int = 0,
    min_degree: int = 2,
) -> PatternWorkload:
    """Generate ``count`` embedded pattern queries of the given shape.

    Patterns are embedded (extracted from the graph around a seed node) so
    that the exact answer is non-empty, mirroring the paper's use of labels
    drawn from the dataset.
    """
    if shape[0] < 2:
        raise WorkloadError("pattern queries need at least two query nodes")
    rng = random.Random(seed)
    queries: List[PatternQueryInstance] = []
    attempts = 0
    while len(queries) < count and attempts < count * 50:
        attempts += 1
        try:
            pattern, match = embedded_pattern(
                graph,
                num_nodes=shape[0],
                num_edges=shape[1],
                seed=rng.randrange(1 << 30),
                min_degree=min_degree,
            )
        except WorkloadError:
            continue
        queries.append(PatternQueryInstance(pattern=pattern, personalized_match=match))
    if len(queries) < count:
        raise WorkloadError(
            f"could only generate {len(queries)}/{count} pattern queries of shape {shape}"
        )
    return PatternWorkload(graph=graph, shape=shape, queries=queries)


@dataclass
class ReachabilityWorkload:
    """A batch of reachability queries with their ground-truth answers."""

    graph: GraphLike
    pairs: List[Tuple[NodeId, NodeId]] = field(default_factory=list)
    truth: Dict[Tuple[NodeId, NodeId], bool] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.pairs)

    def positives(self) -> int:
        """Number of pairs whose exact answer is True."""
        return sum(1 for pair in self.pairs if self.truth[pair])

    def fingerprints(self) -> List[str]:
        """Per-pair stable identities, aligned with :attr:`pairs`."""
        return [reachability_fingerprint(source, target) for source, target in self.pairs]


def generate_reachability_workload(
    graph: GraphLike,
    count: int = 100,
    positive_fraction: float = 0.5,
    seed: int = 0,
    max_walk_length: int = 12,
) -> ReachabilityWorkload:
    """Sample ``count`` ordered pairs with roughly ``positive_fraction`` positives.

    Positive pairs are produced by random forward walks (so the target is
    reachable by construction); negative candidates are uniform random pairs,
    verified against a BFS oracle and discarded if they happen to be
    reachable.  Ground truth for every emitted pair is recorded.
    """
    if count <= 0:
        raise WorkloadError("count must be positive")
    if not 0 <= positive_fraction <= 1:
        raise WorkloadError("positive_fraction must be within [0, 1]")
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise WorkloadError("graph too small for reachability queries")
    rng = random.Random(seed)
    workload = ReachabilityWorkload(graph=graph)
    wanted_positive = round(count * positive_fraction)
    wanted_negative = count - wanted_positive

    attempts = 0
    while len(workload.pairs) < wanted_positive and attempts < wanted_positive * 60:
        attempts += 1
        source = rng.choice(nodes)
        node = source
        for _ in range(rng.randint(1, max_walk_length)):
            successors = list(graph.successors(node))
            if not successors:
                break
            node = rng.choice(successors)
        if node == source:
            continue
        pair = (source, node)
        if pair in workload.truth:
            continue
        workload.pairs.append(pair)
        workload.truth[pair] = True

    attempts = 0
    while len(workload.pairs) < wanted_positive + wanted_negative and attempts < wanted_negative * 200:
        attempts += 1
        source = rng.choice(nodes)
        target = rng.choice(nodes)
        if source == target:
            continue
        pair = (source, target)
        if pair in workload.truth:
            continue
        reachable = _oracle_reachable(graph, source, target)
        if reachable:
            # Keep it only if we still owe positives; otherwise skip.
            if sum(1 for p in workload.pairs if workload.truth[p]) < wanted_positive:
                workload.pairs.append(pair)
                workload.truth[pair] = True
            continue
        workload.pairs.append(pair)
        workload.truth[pair] = False

    if not workload.pairs:
        raise WorkloadError("failed to sample any reachability pairs")
    return workload


def sample_mixed_pairs(
    graph: GraphLike,
    count: int,
    seed: int = 0,
    max_walk_length: int = 12,
) -> List[Tuple[NodeId, NodeId]]:
    """Unverified pair sample: forward-walk positives plus uniform pairs.

    The first half is generated by random forward walks, so those targets are
    reachable by construction and force RBReach into a real bidirectional
    index search; the rest are uniform ordered pairs (mostly refuted in O(1)
    by the topological-rank guard).  Unlike
    :func:`generate_reachability_workload` no exact oracle is consulted, so
    sampling is O(count · walk) — this is the throughput-benchmark workload,
    where ground truth is not needed.
    """
    if count <= 0:
        raise WorkloadError("count must be positive")
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise WorkloadError("graph too small for reachability queries")
    rng = random.Random(seed)
    pairs: List[Tuple[NodeId, NodeId]] = []
    attempts = 0
    while len(pairs) < count // 2 and attempts < count * 20:
        attempts += 1
        source = rng.choice(nodes)
        node = source
        for _ in range(rng.randint(2, max_walk_length)):
            successors = list(graph.successors(node))
            if not successors:
                break
            node = rng.choice(successors)
        if node != source:
            pairs.append((source, node))
    while len(pairs) < count:
        pairs.append((rng.choice(nodes), rng.choice(nodes)))
    return pairs


def _oracle_reachable(graph: GraphLike, source: NodeId, target: NodeId) -> bool:
    """Small exact oracle used while sampling (forward BFS with early exit).

    Delegates to :func:`repro.graph.traversal.is_reachable` so the CSR
    backend's vectorised kernel is used when available.
    """
    return is_reachable(graph, source, target)
