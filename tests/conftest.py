"""Shared fixtures: the Figure 1 social graph, small surrogates, and patterns.

Also the session-wide shared-memory leak check: every test session asserts,
at teardown, that no ``repro_shm_*`` segment survives in ``/dev/shm`` — the
cleanup contract of :mod:`repro.graph.shm` (owner closes ⇒ name unlinked),
enforced for the whole suite rather than test by test.
"""

from __future__ import annotations

import os

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import preferential_attachment_graph, random_graph
from repro.patterns.pattern import GraphPattern, example1_pattern

SHM_DIR = "/dev/shm"


def _repro_segments() -> "list[str]":
    """Live ``repro_shm_*`` names in ``/dev/shm`` (empty off-POSIX)."""
    from repro.graph.shm import SEGMENT_PREFIX

    try:
        entries = os.listdir(SHM_DIR)
    except OSError:  # pragma: no cover - no /dev/shm on this platform
        return []
    return sorted(entry for entry in entries if entry.startswith(SEGMENT_PREFIX))


@pytest.fixture(scope="session", autouse=True)
def shm_leak_check():
    """Fail the session if any test leaks a shared-memory segment.

    Pre-existing segments (a crashed earlier run, a concurrent session) are
    excluded so the check only blames this session's tests.
    """
    before = set(_repro_segments())
    yield
    leaked = [name for name in _repro_segments() if name not in before]
    assert not leaked, (
        f"shared-memory segments leaked by this test session: {leaked}; "
        "every SharedCSRGraph owner must be closed (engines: call close() "
        "or use the context manager)"
    )


def build_example1_graph() -> DiGraph:
    """A small instance of the paper's Figure 1 social graph.

    Michael knows three hiking-group members (HG), three cycling-club members
    (CC) and the graph contains four cycling lovers (CL).  Under both strong
    simulation and subgraph isomorphism the query of Example 1 has answer
    ``{"cl3", "cl4"}``:

    * cc1 and cc3 are CC members with a CL child; cc2 has none;
    * hg3 is the only HG member whose CL child also has a CC parent;
    * cl3 and cl4 have both a qualifying CC parent and the HG parent hg3.
    """
    graph = DiGraph()
    graph.add_node("Michael", "Michael")
    for name in ("hg1", "hg2", "hg3"):
        graph.add_node(name, "HG")
    for name in ("cc1", "cc2", "cc3"):
        graph.add_node(name, "CC")
    for name in ("cl1", "cl2", "cl3", "cl4"):
        graph.add_node(name, "CL")
    for name in ("hg1", "hg2", "hg3", "cc1", "cc2", "cc3"):
        graph.add_edge("Michael", name)
    graph.add_edge("cc1", "cl3")
    graph.add_edge("cc3", "cl3")
    graph.add_edge("cc3", "cl4")
    graph.add_edge("hg3", "cl3")
    graph.add_edge("hg3", "cl4")
    graph.add_edge("hg1", "cl1")
    return graph


@pytest.fixture
def example1_graph() -> DiGraph:
    """The Figure 1 graph."""
    return build_example1_graph()


@pytest.fixture
def example1_query() -> GraphPattern:
    """The Figure 1 pattern query."""
    return example1_pattern()


@pytest.fixture(scope="session")
def small_social_graph() -> DiGraph:
    """A 600-node scale-free graph shared by the heavier tests."""
    return preferential_attachment_graph(
        num_nodes=600, edges_per_node=2, seed=13, back_edge_probability=0.08
    )


@pytest.fixture(scope="session")
def small_random_graph() -> DiGraph:
    """A 400-node uniform random graph (|E| = 2|V|)."""
    return random_graph(num_nodes=400, num_edges=800, seed=21)


@pytest.fixture
def diamond_dag() -> DiGraph:
    """A tiny DAG: a -> b -> d, a -> c -> d, plus a tail d -> e."""
    graph = DiGraph()
    for name, label in [("a", "A"), ("b", "B"), ("c", "C"), ("d", "D"), ("e", "E")]:
        graph.add_node(name, label)
    graph.add_edge("a", "b")
    graph.add_edge("a", "c")
    graph.add_edge("b", "d")
    graph.add_edge("c", "d")
    graph.add_edge("d", "e")
    return graph


@pytest.fixture
def two_cycle_graph() -> DiGraph:
    """Two 3-cycles connected by a single bridge edge."""
    graph = DiGraph()
    for node in range(6):
        graph.add_node(node, "X")
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(2, 0)
    graph.add_edge(3, 4)
    graph.add_edge(4, 5)
    graph.add_edge(5, 3)
    graph.add_edge(2, 3)
    return graph
