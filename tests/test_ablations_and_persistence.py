"""Tests for the ablation drivers and experiment-result persistence."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.ablations import ABLATION_COLUMNS, AblationRow, rbreach_hierarchy, rbsim_mechanisms
from repro.experiments.persistence import (
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)
from repro.experiments.records import ExperimentResult, PatternRow, ReachabilityRow
from repro.experiments.reporting import columns_for, format_result
from repro.graph.generators import preferential_attachment_graph


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment_graph(600, edges_per_node=2, seed=31, back_edge_probability=0.05)


class TestRBSimAblation:
    def test_produces_three_variants(self, graph):
        result = rbsim_mechanisms(graph, "toy", alpha=0.05, shape=(4, 5), num_queries=2, seed=1)
        assert result.experiment_id == "ablation-rbsim"
        assert len(result.rows) == 3
        variants = {row.variant for row in result.rows}
        assert "full" in variants
        assert any("weights" in variant for variant in variants)
        assert any("guard" in variant for variant in variants)

    def test_all_variants_within_budget(self, graph):
        alpha = 0.05
        result = rbsim_mechanisms(graph, "toy", alpha=alpha, shape=(4, 5), num_queries=2, seed=2)
        budget = max(1, int(alpha * graph.size()))
        for row in result.rows:
            assert row.extracted_size <= budget
            assert 0 <= row.accuracy <= 1

    def test_reported_as_table(self, graph):
        result = rbsim_mechanisms(graph, "toy", alpha=0.05, shape=(4, 5), num_queries=2, seed=3)
        assert columns_for(result) == ABLATION_COLUMNS
        text = format_result(result)
        assert "variant" in text
        assert "full" in text


class TestRBReachAblation:
    def test_flat_vs_hierarchical(self, graph):
        result = rbreach_hierarchy(graph, "toy", alpha=0.05, num_queries=30, seed=1)
        assert result.experiment_id == "ablation-rbreach"
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.false_positives == 0
            assert 0 <= row.accuracy <= 1
            assert row.extracted_size <= max(2, int(0.05 * graph.size()))

    def test_registered_in_harness(self):
        from repro.experiments.harness import available_experiments

        experiments = available_experiments()
        assert "ablation-rbsim" in experiments
        assert "ablation-rbreach" in experiments


class TestPersistence:
    def _sample_results(self):
        return [
            ExperimentResult(
                "fig8c",
                "accuracy",
                rows=[PatternRow("toy", "alpha", 0.01, 2, 0.01, "(4,8)", rbsim_accuracy=0.9)],
                notes="quick scale",
            ),
            ExperimentResult(
                "fig8m",
                "accuracy",
                rows=[ReachabilityRow("toy", "alpha", 0.01, 10, 0.01, rbreach_accuracy=0.97)],
            ),
        ]

    def test_round_trip_via_dict(self):
        original = self._sample_results()[0]
        restored = result_from_dict(result_to_dict(original))
        assert restored.experiment_id == original.experiment_id
        assert restored.notes == original.notes
        assert restored.rows == original.rows

    def test_round_trip_via_file(self, tmp_path):
        results = self._sample_results()
        path = tmp_path / "results.json"
        save_results(results, path)
        loaded = load_results(path)
        assert len(loaded) == 2
        assert loaded[0].rows == results[0].rows
        assert loaded[1].rows[0].rbreach_accuracy == pytest.approx(0.97)

    def test_load_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}', encoding="utf-8")
        with pytest.raises(ExperimentError):
            load_results(path)

    def test_unknown_row_type_rejected(self):
        with pytest.raises(ExperimentError):
            result_from_dict(
                {"experiment_id": "x", "title": "t", "rows": [{"type": "Mystery", "data": {}}]}
            )

    def test_malformed_document_rejected(self):
        with pytest.raises(ExperimentError):
            result_from_dict({"title": "missing id"})

    def test_ablation_rows_not_serialisable_yet(self):
        result = ExperimentResult(
            "ablation-rbsim",
            "t",
            rows=[AblationRow("toy", "variant", "full", "full", 1.0, 10.0)],
        )
        with pytest.raises(ExperimentError):
            result_to_dict(result)
