"""Tests for the accuracy measures of Section 3."""

import pytest

from repro.core.accuracy import (
    AccuracyReport,
    boolean_accuracy,
    mean_accuracy,
    pattern_accuracy,
    reachability_counts,
    set_accuracy,
)


class TestSetAccuracy:
    def test_perfect_answer(self):
        report = set_accuracy({1, 2, 3}, {1, 2, 3})
        assert report == AccuracyReport(1.0, 1.0, 1.0)

    def test_partial_recall(self):
        report = set_accuracy({1, 2, 3, 4}, {1, 2})
        assert report.precision == 1.0
        assert report.recall == 0.5
        assert report.f_measure == pytest.approx(2 / 3)

    def test_partial_precision(self):
        report = set_accuracy({1}, {1, 2, 3, 4})
        assert report.precision == 0.25
        assert report.recall == 1.0
        assert report.f_measure == pytest.approx(0.4)

    def test_disjoint_sets(self):
        report = set_accuracy({1, 2}, {3, 4})
        assert report.f_measure == 0.0

    def test_both_empty_counts_as_perfect(self):
        assert set_accuracy(set(), set()).f_measure == 1.0

    def test_one_side_empty(self):
        assert set_accuracy(set(), {1}).f_measure == 0.0
        assert set_accuracy({1}, set()).f_measure == 0.0

    def test_pattern_accuracy_accepts_iterables(self):
        assert pattern_accuracy([1, 2], (2, 1)).f_measure == 1.0

    def test_as_tuple(self):
        assert set_accuracy({1}, {1}).as_tuple() == (1.0, 1.0, 1.0)


class TestBooleanAccuracy:
    def test_all_correct(self):
        exact = {"q1": True, "q2": False}
        assert boolean_accuracy(exact, dict(exact)).f_measure == 1.0

    def test_false_negatives_lower_accuracy(self):
        exact = {"q1": True, "q2": True, "q3": False, "q4": False}
        approx = {"q1": True, "q2": False, "q3": False, "q4": False}
        report = boolean_accuracy(exact, approx)
        assert report.precision == 0.75
        assert report.recall == 0.75

    def test_unanswered_queries_hit_recall_only(self):
        exact = {"q1": True, "q2": False}
        approx = {"q1": True}
        report = boolean_accuracy(exact, approx)
        assert report.precision == 1.0
        assert report.recall == 0.5

    def test_empty_batches(self):
        assert boolean_accuracy({}, {}).f_measure == 1.0

    def test_confusion_counts(self):
        exact = {"a": True, "b": True, "c": False, "d": False}
        approx = {"a": True, "b": False, "c": True, "d": False}
        counts = reachability_counts(exact, approx)
        assert counts == {"tp": 1, "tn": 1, "fp": 1, "fn": 1}

    def test_confusion_counts_skip_unanswered(self):
        counts = reachability_counts({"a": True}, {})
        assert counts == {"tp": 0, "tn": 0, "fp": 0, "fn": 0}


class TestMeanAccuracy:
    def test_mean_of_reports(self):
        reports = [AccuracyReport(1.0, 1.0, 1.0), AccuracyReport(0.0, 0.0, 0.0)]
        mean = mean_accuracy(reports)
        assert mean.precision == 0.5
        assert mean.f_measure == 0.5

    def test_mean_of_empty_sequence_is_perfect(self):
        assert mean_accuracy([]).f_measure == 1.0
