"""Behavioural tests for ``tools/bench_report.py`` (the CI regression gate).

Suites are stubbed out so these tests exercise the *gate machinery* —
baseline bootstrap via ``--update``, regression detection, actionable
errors on unusable baselines — without running any real benchmark.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture()
def bench_report():
    spec = importlib.util.spec_from_file_location(
        "bench_report_under_test", ROOT / "tools" / "bench_report.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    try:
        yield module
    finally:
        sys.modules.pop(spec.name, None)


@pytest.fixture()
def stub_suite(bench_report, monkeypatch):
    def fake_suite():
        return {
            "suite": "fake",
            "schema_version": 1,
            "environment": {},
            "config": {},
            "metrics": {"speedup": 3.0, "witness": 1},
            "gates": {"speedup": "higher", "witness": "higher"},
        }

    monkeypatch.setattr(bench_report, "SUITES", {"fake": fake_suite})
    return fake_suite


def _dirs(tmp_path):
    return tmp_path / "reports", tmp_path / "baselines"


def test_update_creates_a_missing_baseline(bench_report, stub_suite, tmp_path):
    """--update must bootstrap a baseline that does not exist yet."""
    output_dir, baseline_dir = _dirs(tmp_path)
    code = bench_report.main(
        [
            "--suite",
            "fake",
            "--update",
            "--output-dir",
            str(output_dir),
            "--baseline-dir",
            str(baseline_dir),
        ]
    )
    assert code == 0
    baseline_path = baseline_dir / "BENCH_fake.json"
    assert baseline_path.exists()
    payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert payload["metrics"]["speedup"] == 3.0
    assert payload["gates"] == {"speedup": "higher", "witness": "higher"}


def test_update_only_relaxes_gated_floors(bench_report, stub_suite, tmp_path):
    output_dir, baseline_dir = _dirs(tmp_path)
    baseline_dir.mkdir(parents=True)
    committed = {
        "suite": "fake",
        "metrics": {"speedup": 2.0, "witness": 1},
        "gates": {"speedup": "higher", "witness": "higher"},
        "note": "hand-tuned",
    }
    (baseline_dir / "BENCH_fake.json").write_text(json.dumps(committed), encoding="utf-8")
    code = bench_report.main(
        [
            "--suite",
            "fake",
            "--update",
            "--output-dir",
            str(output_dir),
            "--baseline-dir",
            str(baseline_dir),
        ]
    )
    assert code == 0
    payload = json.loads((baseline_dir / "BENCH_fake.json").read_text(encoding="utf-8"))
    # The fresh 3.0 must not raise the committed 2.0 floor; the note survives.
    assert payload["metrics"]["speedup"] == 2.0
    assert payload["note"] == "hand-tuned"


def test_check_fails_without_baseline_and_names_the_fix(
    bench_report, stub_suite, tmp_path, capsys
):
    output_dir, baseline_dir = _dirs(tmp_path)
    code = bench_report.main(
        [
            "--suite",
            "fake",
            "--check",
            "--output-dir",
            str(output_dir),
            "--baseline-dir",
            str(baseline_dir),
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "no committed baseline" in out
    assert "--update" in out


def test_check_detects_regression(bench_report, stub_suite, tmp_path, capsys):
    output_dir, baseline_dir = _dirs(tmp_path)
    baseline_dir.mkdir(parents=True)
    committed = {
        "suite": "fake",
        "metrics": {"speedup": 10.0, "witness": 1},
        "gates": {"speedup": "higher", "witness": "higher"},
    }
    (baseline_dir / "BENCH_fake.json").write_text(json.dumps(committed), encoding="utf-8")
    code = bench_report.main(
        [
            "--suite",
            "fake",
            "--check",
            "--output-dir",
            str(output_dir),
            "--baseline-dir",
            str(baseline_dir),
        ]
    )
    assert code == 1
    assert "fake.speedup" in capsys.readouterr().out


def test_check_skips_metrics_the_runner_cannot_exhibit(bench_report):
    """A report-side ``skipped`` entry excludes a baseline-gated metric."""
    baseline = {
        "suite": "fake",
        "metrics": {"speedup": 10.0, "witness": 1},
        "gates": {"speedup": "higher", "witness": "higher"},
    }
    report = {
        "suite": "fake",
        "metrics": {"speedup": 0.7, "witness": 1},  # <1x: would fail if gated
        "gates": {"witness": "higher"},
        "skipped": {"speedup": "single-core"},
    }
    assert bench_report.check_against_baseline(report, baseline, 0.30) == []
    # Without the skip tag the same numbers must still fail the gate.
    report.pop("skipped")
    failures = bench_report.check_against_baseline(report, baseline, 0.30)
    assert failures and "fake.speedup" in failures[0]


def test_all_suites_registered_with_committed_baselines():
    spec = importlib.util.spec_from_file_location(
        "bench_report_registry_check", ROOT / "tools" / "bench_report.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert set(module.SUITES) == {
        "engine",
        "backend",
        "updates",
        "shard",
        "service",
        "latency",
        "kernels",
        "subscriptions",
    }
    for name in module.SUITES:
        assert (ROOT / "benchmarks" / "baselines" / f"BENCH_{name}.json").exists()
