"""Tests for the simulation-preserving (query-preserving) compression."""

import pytest

from repro.graph.bisimulation import (
    bisimulation_partition,
    compress_for_simulation,
    simulation_preserving,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import path_graph, star_graph
from repro.matching.strong_simulation import strong_simulation


class TestPartition:
    def test_same_block_implies_same_label(self, example1_graph):
        blocks = bisimulation_partition(example1_graph)
        by_block = {}
        for node, block in blocks.items():
            by_block.setdefault(block, set()).add(node)
        for members in by_block.values():
            labels = {example1_graph.label(node) for node in members}
            assert len(labels) == 1

    def test_same_block_implies_same_neighbor_blocks(self, example1_graph):
        blocks = bisimulation_partition(example1_graph)
        by_block = {}
        for node, block in blocks.items():
            by_block.setdefault(block, set()).add(node)
        for members in by_block.values():
            child_signatures = {
                frozenset(blocks[child] for child in example1_graph.successors(node))
                for node in members
            }
            parent_signatures = {
                frozenset(blocks[parent] for parent in example1_graph.predecessors(node))
                for node in members
            }
            assert len(child_signatures) == 1
            assert len(parent_signatures) == 1

    def test_symmetric_leaves_collapse(self):
        graph = star_graph(8)
        blocks = bisimulation_partition(graph)
        leaf_blocks = {blocks[leaf] for leaf in range(1, 9)}
        assert len(leaf_blocks) == 1
        assert blocks[0] not in leaf_blocks

    def test_path_endpoints_distinguished_from_middle(self):
        graph = path_graph(3, label="P")  # 0 -> 1 -> 2 -> 3, all same label
        blocks = bisimulation_partition(graph)
        assert blocks[0] != blocks[1]
        assert blocks[3] != blocks[2]

    def test_empty_graph(self):
        assert bisimulation_partition(DiGraph()) == {}


class TestQuotient:
    def test_quotient_never_larger(self, example1_graph, small_social_graph):
        for graph in (example1_graph, small_social_graph):
            compressed = compress_for_simulation(graph)
            assert compressed.quotient.num_nodes() <= graph.num_nodes()
            assert compressed.compression_ratio() <= 1.0

    def test_symmetric_structure_compresses_well(self):
        graph = star_graph(20)
        compressed = compress_for_simulation(graph)
        assert compressed.quotient.num_nodes() == 2  # hub block + leaf block
        assert compressed.compression_ratio() < 0.2

    def test_membership_maps_are_consistent(self, example1_graph):
        compressed = compress_for_simulation(example1_graph)
        for node in example1_graph.nodes():
            block = compressed.compress_node(node)
            assert node in compressed.members[block]
        total = sum(len(members) for members in compressed.members.values())
        assert total == example1_graph.num_nodes()

    def test_decompress_answer_unions_members(self, example1_graph):
        compressed = compress_for_simulation(example1_graph)
        block = compressed.compress_node("cl3")
        expanded = compressed.decompress_answer({block})
        assert "cl3" in expanded
        assert expanded == compressed.members[block]

    def test_quotient_labels_match_members(self, example1_graph):
        compressed = compress_for_simulation(example1_graph)
        for block, members in compressed.members.items():
            member_label = example1_graph.label(next(iter(members)))
            assert compressed.quotient.label(block) == member_label


class TestQueryPreservation:
    def test_example1_answer_preserved(self, example1_graph, example1_query):
        compressed = compress_for_simulation(example1_graph)
        # Michael's label is unique, so its class is a singleton and the check applies.
        assert len(compressed.members[compressed.compress_node("Michael")]) == 1
        assert simulation_preserving(compressed, example1_query, "Michael")

    def test_example1_answer_values(self, example1_graph, example1_query):
        compressed = compress_for_simulation(example1_graph)
        quotient_answer = strong_simulation(
            example1_query,
            compressed.quotient,
            compressed.compress_node("Michael"),
        ).answer
        assert compressed.decompress_answer(set(quotient_answer)) == {"cl3", "cl4"}

    def test_compression_can_feed_rbsim(self, example1_graph, example1_query):
        """The paper: [12]'s compression combines with resource-bounded answering."""
        from repro.core.rbsim import rbsim

        compressed = compress_for_simulation(example1_graph)
        answer = rbsim(
            example1_query,
            compressed.quotient,
            compressed.compress_node("Michael"),
            alpha=0.9,
        )
        assert compressed.decompress_answer(set(answer.answer)) == {"cl3", "cl4"}
