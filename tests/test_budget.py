"""Tests for resource budgets and budget reports."""

import pytest

from repro.core.budget import BudgetReport, ResourceBudget, snapshot
from repro.exceptions import BudgetError


class TestResourceBudget:
    def test_limits_follow_alpha(self):
        budget = ResourceBudget(alpha=0.1, graph_size=1000, visit_coefficient=2.0)
        assert budget.size_limit == 100
        assert budget.visit_limit == 200

    def test_limits_are_at_least_one(self):
        budget = ResourceBudget(alpha=0.0001, graph_size=100)
        assert budget.size_limit == 1
        assert budget.visit_limit == 1

    def test_invalid_parameters(self):
        with pytest.raises(BudgetError):
            ResourceBudget(alpha=0.0, graph_size=10)
        with pytest.raises(BudgetError):
            ResourceBudget(alpha=1.5, graph_size=10)
        with pytest.raises(BudgetError):
            ResourceBudget(alpha=0.5, graph_size=-1)
        with pytest.raises(BudgetError):
            ResourceBudget(alpha=0.5, graph_size=10, visit_coefficient=0)

    def test_alpha_one_allowed_for_baselines(self):
        budget = ResourceBudget(alpha=1.0, graph_size=50)
        assert budget.size_limit == 50

    def test_charging_and_exhaustion(self):
        budget = ResourceBudget(alpha=0.5, graph_size=10)
        assert budget.size_limit == 5
        assert not budget.storage_exhausted()
        budget.charge_storage(3)
        assert budget.storage_remaining() == 2
        assert budget.can_store(2)
        assert not budget.can_store(3)
        budget.charge_storage(2)
        assert budget.storage_exhausted()
        assert budget.utilisation() == pytest.approx(1.0)

    def test_visit_charging(self):
        budget = ResourceBudget(alpha=0.5, graph_size=10, visit_coefficient=3)
        assert budget.visit_limit == 15
        budget.charge_visit(10)
        assert not budget.visits_exhausted()
        budget.charge_visit(5)
        assert budget.visits_exhausted()
        assert budget.visited == 15

    def test_negative_charges_rejected(self):
        budget = ResourceBudget(alpha=0.5, graph_size=10)
        with pytest.raises(BudgetError):
            budget.charge_visit(-1)
        with pytest.raises(BudgetError):
            budget.charge_storage(-1)

    def test_reset(self):
        budget = ResourceBudget(alpha=0.5, graph_size=10)
        budget.charge_storage(2)
        budget.charge_visit(4)
        budget.reset()
        assert budget.stored == 0
        assert budget.visited == 0


class TestBudgetReport:
    def test_snapshot_reflects_state(self):
        budget = ResourceBudget(alpha=0.2, graph_size=100, visit_coefficient=2)
        budget.charge_storage(10)
        budget.charge_visit(30)
        report = snapshot(budget)
        assert isinstance(report, BudgetReport)
        assert report.stored == 10
        assert report.visited == 30
        assert report.within_size_bound
        assert report.within_visit_bound
        assert report.fraction_of_graph_visited == pytest.approx(0.3)

    def test_report_flags_violations(self):
        report = BudgetReport(
            alpha=0.1, graph_size=100, size_limit=10, visit_limit=20, stored=11, visited=25
        )
        assert not report.within_size_bound
        assert not report.within_visit_bound

    def test_fraction_of_empty_graph(self):
        report = BudgetReport(alpha=0.1, graph_size=0, size_limit=1, visit_limit=1, stored=0, visited=0)
        assert report.fraction_of_graph_visited == 0.0
