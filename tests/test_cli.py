"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig8a" in output
        assert "table2" in output
        assert "youtube" in output


class TestDatasets:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "youtube-small" in output
        assert "|V|=" in output


class TestRun:
    def test_run_single_experiment(self, capsys):
        assert main(["run", "fig8m", "--scale", "quick", "--seed", "2"]) == 0
        output = capsys.readouterr().out
        assert "fig8m" in output
        assert "Summary:" in output

    def test_run_writes_output_file(self, tmp_path, capsys):
        report = tmp_path / "report.txt"
        assert main(["run", "fig8c", "--scale", "quick", "--output", str(report)]) == 0
        capsys.readouterr()
        assert report.exists()
        assert "fig8c" in report.read_text(encoding="utf-8")

    def test_unknown_experiment_errors(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "fig8zz"])

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestSubscribe:
    def test_subscribe_reports_maintenance_and_verifies(self, tmp_path, capsys):
        import json

        out = tmp_path / "subscribe.json"
        assert (
            main(
                [
                    "subscribe",
                    "--dataset",
                    "youtube-small",
                    "--count",
                    "8",
                    "--batches",
                    "2",
                    "--ops",
                    "10",
                    "--confine",
                    "0.3",
                    "--executor",
                    "serial",
                    "--verify",
                    "--output",
                    str(out),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "registered: 8 subscriptions" in output
        assert "verify=ok" in output and "MISMATCH" not in output
        assert "replay: every pushed log replays" in output
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["subscriptions"] == 8 and payload["batches"] == 2
        assert payload["verify_failures"] == 0 and payload["replay_parity"] is True
        assert 0.0 <= payload["affected_fraction"] <= 1.0
        # Every pushed delta is a snapshot or a change on some subscription.
        assert payload["deltas_pushed"] == payload["answer_deltas"] + 8

    def test_subscribe_rejects_bad_confine(self):
        with pytest.raises(SystemExit):
            main(["subscribe", "--confine", "1.5"])


class TestTrace:
    def test_trace_prints_waterfall_and_exports_chrome_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace",
                    "--dataset",
                    "youtube-small",
                    "--count",
                    "40",
                    "--batches",
                    "2",
                    "--executor",
                    "serial",
                    "--export",
                    str(out),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "trace " in output and "service.query" in output
        payload = json.loads(out.read_text(encoding="utf-8"))
        events = payload["traceEvents"]
        assert events and all(event["ph"] == "X" for event in events)
        assert events[0]["name"] == "service.query"
