"""Tests for SCC computation and the reachability-preserving condensation."""

import pytest

from repro.graph.components import condensation, is_dag, strongly_connected_components
from repro.graph.digraph import DiGraph
from repro.graph.generators import cycle_graph, path_graph
from repro.graph.traversal import bidirectional_reachable


class TestSCC:
    def test_single_cycle_is_one_component(self):
        graph = cycle_graph(5)
        components = strongly_connected_components(graph)
        assert len(components) == 1
        assert components[0] == set(range(5))

    def test_path_has_singleton_components(self):
        graph = path_graph(4)
        components = strongly_connected_components(graph)
        assert len(components) == 5
        assert all(len(component) == 1 for component in components)

    def test_two_cycles_with_bridge(self, two_cycle_graph):
        components = strongly_connected_components(two_cycle_graph)
        assert len(components) == 2
        assert {0, 1, 2} in components and {3, 4, 5} in components

    def test_components_partition_nodes(self, small_social_graph):
        components = strongly_connected_components(small_social_graph)
        seen = set()
        total = 0
        for component in components:
            assert not (component & seen)
            seen |= component
            total += len(component)
        assert total == small_social_graph.num_nodes()

    def test_reverse_topological_order(self, diamond_dag):
        components = strongly_connected_components(diamond_dag)
        # Every component is a singleton; a component must appear after the
        # components it reaches (reverse topological order).
        positions = {next(iter(component)): index for index, component in enumerate(components)}
        for source, target in diamond_dag.edges():
            assert positions[target] < positions[source]


class TestIsDag:
    def test_dag_detection(self, diamond_dag, two_cycle_graph):
        assert is_dag(diamond_dag)
        assert not is_dag(two_cycle_graph)

    def test_self_loop_is_cycle(self):
        graph = DiGraph()
        graph.add_node(1, "A")
        graph.add_edge(1, 1)
        assert not is_dag(graph)


class TestCondensation:
    def test_condensation_is_a_dag(self, two_cycle_graph):
        result = condensation(two_cycle_graph)
        assert is_dag(result.dag)
        assert result.dag.num_nodes() == 2
        assert result.dag.num_edges() == 1

    def test_membership_and_members_consistent(self, two_cycle_graph):
        result = condensation(two_cycle_graph)
        for node in two_cycle_graph.nodes():
            assert node in result.members[result.component_of(node)]

    def test_component_of_unknown_node_raises(self, two_cycle_graph):
        from repro.exceptions import NodeNotFoundError

        result = condensation(two_cycle_graph)
        with pytest.raises(NodeNotFoundError):
            result.component_of("ghost")

    def test_compression_ratio_below_one_for_cyclic_graph(self, two_cycle_graph):
        result = condensation(two_cycle_graph)
        assert result.compression_ratio(two_cycle_graph) < 1.0

    def test_reachability_preserved(self, small_social_graph):
        result = condensation(small_social_graph)
        nodes = sorted(small_social_graph.nodes())[:12]
        for source in nodes[:6]:
            for target in nodes[6:]:
                original = bidirectional_reachable(small_social_graph, source, target)
                source_component = result.component_of(source)
                target_component = result.component_of(target)
                condensed = source_component == target_component or bidirectional_reachable(
                    result.dag, source_component, target_component
                )
                assert original == condensed

    def test_condensation_of_dag_is_isomorphic_in_size(self, diamond_dag):
        result = condensation(diamond_dag)
        assert result.dag.num_nodes() == diamond_dag.num_nodes()
        assert result.dag.num_edges() == diamond_dag.num_edges()
