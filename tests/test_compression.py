"""Tests for the reachability-preserving compression step."""

import pytest

from repro.graph.components import is_dag
from repro.graph.generators import cycle_graph, path_graph
from repro.graph.traversal import bidirectional_reachable
from repro.reachability.compression import compress, verify_reachability_preserved


class TestCompress:
    def test_dag_output(self, two_cycle_graph):
        compressed = compress(two_cycle_graph)
        assert is_dag(compressed.dag)
        assert compressed.dag.num_nodes() == 2

    def test_component_lookup_and_ranks(self, two_cycle_graph):
        compressed = compress(two_cycle_graph)
        first = compressed.component_of(0)
        second = compressed.component_of(3)
        assert first != second
        assert compressed.rank_of(0) > compressed.rank_of(3)

    def test_same_component_detection(self, two_cycle_graph):
        compressed = compress(two_cycle_graph)
        assert compressed.same_component(0, 2)
        assert not compressed.same_component(0, 4)

    def test_compression_ratio(self, two_cycle_graph):
        compressed = compress(two_cycle_graph)
        assert 0 < compressed.compression_ratio() < 1

    def test_ratio_is_one_for_dag(self, diamond_dag):
        compressed = compress(diamond_dag)
        assert compressed.compression_ratio() == pytest.approx(1.0)

    def test_exact_reachable_matches_original(self, small_social_graph):
        compressed = compress(small_social_graph)
        nodes = sorted(small_social_graph.nodes())[:16]
        for source in nodes[:8]:
            for target in nodes[8:]:
                assert compressed.exact_reachable(source, target) == bidirectional_reachable(
                    small_social_graph, source, target
                )

    def test_cycle_collapses_to_single_node(self):
        compressed = compress(cycle_graph(6))
        assert compressed.dag.num_nodes() == 1
        assert compressed.exact_reachable(0, 3)

    def test_path_stays_identical_in_size(self):
        graph = path_graph(5)
        compressed = compress(graph)
        assert compressed.dag.num_nodes() == graph.num_nodes()
        assert compressed.exact_reachable(0, 5)
        assert not compressed.exact_reachable(5, 0)


class TestVerification:
    def test_verify_with_no_samples_trivially_true(self, two_cycle_graph):
        assert verify_reachability_preserved(compress(two_cycle_graph))

    def test_verify_with_samples(self, small_social_graph):
        compressed = compress(small_social_graph)
        nodes = sorted(small_social_graph.nodes())
        samples = {nodes[0]: nodes[1], nodes[2]: nodes[3], nodes[10]: nodes[42]}
        assert verify_reachability_preserved(compressed, samples)
