"""Backend parity: ``CSRGraph`` must be indistinguishable from ``DiGraph``.

Property-style tests over a spread of generated graphs assert that the CSR
backend agrees with the dict-of-sets backend on

* every structural observation of the :class:`GraphLike` protocol (labels,
  degrees, successor/predecessor sets *and iteration order*, membership);
* every order-insensitive traversal result (distance maps, reachability,
  components); and
* the *answers* of the resource-bounded algorithms — RBSim, RBSub and
  RBReach return bit-identical results on both backends, which is the
  guarantee that makes the CSR backend a drop-in substitution.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.rbsim import RBSim
from repro.core.rbsub import RBSub
from repro.exceptions import GraphError, NodeNotFoundError, WorkloadError
from repro.graph import traversal as tr
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    community_graph,
    layered_dag,
    preferential_attachment_graph,
    random_graph,
    star_graph,
)
from repro.graph.io import read_edge_list, read_json, write_edge_list, write_json
from repro.graph.protocol import GraphLike
from repro.reachability.rbreach import RBReach
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import (
    generate_pattern_workload,
    generate_reachability_workload,
)


def _sample_graphs():
    yield "random", random_graph(num_nodes=400, num_edges=900, seed=3)
    yield "scale-free", preferential_attachment_graph(
        num_nodes=400, edges_per_node=2, seed=5, back_edge_probability=0.1
    )
    yield "dag", layered_dag(layers=6, width=30, seed=2)
    yield "community", community_graph(communities=[40, 40, 40, 40], seed=1)
    yield "star", star_graph(leaves=25)


def _string_id_graph() -> DiGraph:
    graph = DiGraph()
    names = [f"node-{i}" for i in range(40)]
    rng = random.Random(11)
    for name in names:
        graph.add_node(name, rng.choice("abc"))
    for _ in range(90):
        graph.add_edge(rng.choice(names), rng.choice(names))
    return graph


class TestStructuralParity:
    @pytest.mark.parametrize("name,graph", list(_sample_graphs()))
    def test_structure_matches(self, name, graph):
        csr = CSRGraph.from_digraph(graph)
        csr.validate()
        assert isinstance(csr, GraphLike)
        assert isinstance(graph, GraphLike)
        assert csr.num_nodes() == graph.num_nodes()
        assert csr.num_edges() == graph.num_edges()
        assert csr.size() == graph.size()
        assert csr.max_degree() == graph.max_degree()
        assert list(csr.nodes()) == list(graph.nodes())
        assert sorted(csr.edges()) == sorted(graph.edges())
        assert csr.distinct_labels() == graph.distinct_labels()
        for node in graph.nodes():
            assert node in csr
            assert csr.label(node) == graph.label(node)
            assert set(csr.successors(node)) == graph.successors(node)
            assert set(csr.predecessors(node)) == graph.predecessors(node)
            # Iteration order is preserved, which is what makes the heuristic
            # algorithms take identical decisions on both backends.
            assert list(csr.successors(node)) == list(graph.successors(node))
            assert list(csr.predecessors(node)) == list(graph.predecessors(node))
            assert csr.neighbors(node) == graph.neighbors(node)
            assert csr.degree(node) == graph.degree(node)
            assert csr.out_degree(node) == graph.out_degree(node)
            assert csr.in_degree(node) == graph.in_degree(node)
        for label in graph.distinct_labels():
            assert csr.nodes_with_label(label) == graph.nodes_with_label(label)

    @pytest.mark.parametrize("name,graph", list(_sample_graphs()))
    def test_edge_membership(self, name, graph):
        csr = CSRGraph.from_digraph(graph)
        rng = random.Random(0)
        nodes = list(graph.nodes())
        for _ in range(200):
            source, target = rng.choice(nodes), rng.choice(nodes)
            assert csr.has_edge(source, target) == graph.has_edge(source, target)
        assert not csr.has_edge("missing", nodes[0])

    def test_round_trip(self):
        for _, graph in _sample_graphs():
            assert CSRGraph.from_digraph(graph).to_digraph() == graph

    def test_string_identifiers(self):
        graph = _string_id_graph()
        csr = CSRGraph.from_digraph(graph)
        assert csr.to_digraph() == graph
        for node in graph.nodes():
            assert set(csr.successors(node)) == graph.successors(node)
            assert csr.label(node) == graph.label(node)

    def test_from_edges_matches_digraph_semantics(self):
        graph = random_graph(num_nodes=120, num_edges=300, seed=9)
        labels = dict(graph.labels())
        labels["isolated"] = "z"
        edges = list(graph.edges()) + list(graph.edges())[:10]  # parallel edges collapse
        built = CSRGraph.from_edges(edges, labels)
        reference = DiGraph.from_edges(edges, labels)
        assert built.num_nodes() == reference.num_nodes()
        assert built.num_edges() == reference.num_edges()
        assert "isolated" in built and built.label("isolated") == "z"
        for node in reference.nodes():
            assert set(built.successors(node)) == reference.successors(node)
            assert built.label(node) == reference.label(node)

    def test_empty_and_missing_nodes(self):
        empty = CSRGraph.from_digraph(DiGraph())
        assert empty.num_nodes() == 0 and empty.num_edges() == 0
        assert empty.max_degree() == 0
        assert list(empty.nodes()) == []
        with pytest.raises(NodeNotFoundError):
            empty.successors("ghost")
        with pytest.raises(NodeNotFoundError):
            empty.label("ghost")


class TestTraversalParity:
    @pytest.mark.parametrize("name,graph", list(_sample_graphs()))
    def test_traversal_results_match(self, name, graph):
        csr = CSRGraph.from_digraph(graph)
        rng = random.Random(4)
        nodes = list(graph.nodes())
        for _ in range(12):
            source, target = rng.choice(nodes), rng.choice(nodes)
            for direction in ("forward", "backward", "both"):
                assert tr.bfs_levels(graph, source, direction=direction) == tr.bfs_levels(
                    csr, source, direction=direction
                )
            assert tr.bfs_levels(graph, source, max_hops=2) == tr.bfs_levels(
                csr, source, max_hops=2
            )
            assert tr.is_reachable(graph, source, target) == tr.is_reachable(csr, source, target)
            assert tr.bidirectional_reachable(graph, source, target) == tr.bidirectional_reachable(
                csr, source, target
            )
            assert tr.descendants(graph, source) == tr.descendants(csr, source)
            assert tr.ancestors(graph, source) == tr.ancestors(csr, source)
            assert tr.connected_component(graph, source) == tr.connected_component(csr, source)
        assert sorted(map(sorted, tr.weakly_connected_components(graph))) == sorted(
            map(sorted, tr.weakly_connected_components(csr))
        )

    def test_generic_traversals_accept_csr(self):
        graph = layered_dag(layers=5, width=10, seed=8)
        csr = CSRGraph.from_digraph(graph)
        source = next(iter(graph.nodes()))
        assert set(tr.bfs_order(csr, source)) == set(tr.bfs_order(graph, source))
        assert set(tr.dfs_order(csr, source)) == set(tr.dfs_order(graph, source))
        counter_digraph, counter_csr = [0], [0]
        nodes = list(graph.nodes())
        answer_digraph = tr.is_reachable(graph, nodes[0], nodes[-1], counter_digraph)
        answer_csr = tr.is_reachable(csr, nodes[0], nodes[-1], counter_csr)
        assert answer_digraph == answer_csr
        assert counter_digraph == counter_csr  # visit accounting uses the generic path


class TestAlgorithmParity:
    def test_rbsim_and_rbsub_identical_answers(self):
        graph = load_dataset("youtube-small", seed=7)
        csr = CSRGraph.from_digraph(graph)
        workload = generate_pattern_workload(graph, shape=(4, 8), count=3, seed=2)
        for alpha in (0.02, 0.08):
            for query in workload:
                sim_digraph = RBSim(graph, alpha).answer(query.pattern, query.personalized_match)
                sim_csr = RBSim(csr, alpha).answer(query.pattern, query.personalized_match)
                assert sim_digraph.answer == sim_csr.answer
                assert sim_digraph.subgraph == sim_csr.subgraph
                sub_digraph = RBSub(graph, alpha).answer(query.pattern, query.personalized_match)
                sub_csr = RBSub(csr, alpha).answer(query.pattern, query.personalized_match)
                assert sub_digraph.answer == sub_csr.answer

    def test_rbreach_identical_index_and_answers(self):
        graph = load_dataset("youtube-small", seed=7)
        csr = CSRGraph.from_digraph(graph)
        workload = generate_reachability_workload(graph, count=80, seed=5)
        for alpha in (0.02, 0.05):
            matcher_digraph = RBReach.from_graph(graph, alpha)
            matcher_csr = RBReach.from_graph(csr, alpha)
            index_digraph, index_csr = matcher_digraph.index, matcher_csr.index
            assert index_digraph.num_landmarks() == index_csr.num_landmarks()
            assert set(index_digraph.landmarks) == set(index_csr.landmarks)
            assert index_digraph.forward_labels == index_csr.forward_labels
            assert index_digraph.backward_labels == index_csr.backward_labels
            assert {k: v.cover_size for k, v in index_digraph.landmarks.items()} == {
                k: v.cover_size for k, v in index_csr.landmarks.items()
            }
            for pair in workload.pairs:
                assert (
                    matcher_digraph.query(*pair).reachable
                    == matcher_csr.query(*pair).reachable
                )

    def test_rbreach_answers_on_cyclic_graph(self):
        graph = random_graph(num_nodes=600, num_edges=1400, seed=13)
        csr = CSRGraph.from_digraph(graph)
        workload = generate_reachability_workload(graph, count=60, seed=3)
        matcher_digraph = RBReach.from_graph(graph, 0.05)
        matcher_csr = RBReach.from_graph(csr, 0.05)
        for pair in workload.pairs:
            assert matcher_digraph.query(*pair).reachable == matcher_csr.query(*pair).reachable


class TestLoading:
    def test_edge_list_round_trip_into_csr(self, tmp_path):
        graph = random_graph(num_nodes=60, num_edges=150, seed=21)
        path = tmp_path / "graph.tsv"
        write_edge_list(graph, path)
        loaded = read_edge_list(path, backend="csr")
        assert isinstance(loaded, CSRGraph)
        assert loaded.to_digraph() == graph

    def test_json_round_trip_into_csr(self, tmp_path):
        graph = random_graph(num_nodes=50, num_edges=120, seed=22)
        path = tmp_path / "graph.json"
        write_json(graph, path)
        loaded = read_json(path, backend="csr")
        assert isinstance(loaded, CSRGraph)
        assert loaded.to_digraph() == graph

    def test_csr_graph_can_be_written(self, tmp_path):
        graph = random_graph(num_nodes=40, num_edges=90, seed=23)
        csr = CSRGraph.from_digraph(graph)
        path = tmp_path / "csr.tsv"
        write_edge_list(csr, path)
        assert read_edge_list(path) == graph

    def test_unknown_backend_rejected(self, tmp_path):
        path = tmp_path / "graph.tsv"
        write_edge_list(random_graph(num_nodes=10, num_edges=15, seed=1), path)
        with pytest.raises(GraphError):
            read_edge_list(path, backend="adjacency-matrix")
        with pytest.raises(WorkloadError):
            load_dataset("youtube-small", backend="adjacency-matrix")

    def test_load_dataset_backend(self):
        digraph = load_dataset("youtube-small", seed=7)
        csr = load_dataset("youtube-small", seed=7, backend="csr")
        assert isinstance(csr, CSRGraph)
        assert csr.to_digraph() == digraph
