"""Persistent worker daemons (``repro.engine.daemons``) under fire.

Crash-injection contract:

* a daemon SIGKILLed **mid-chunk** is detected, restarted, and its chunk
  retried on a healthy worker — the batch completes with bit-identical
  answers;
* a chunk that kills every worker it touches raises a typed
  :class:`~repro.exceptions.DaemonError` (an ``EngineError``) after a
  bounded number of restarts, and the pool stays fully usable;
* worker deaths **between** batches are absorbed transparently;
* the async service front-end releases admission on a daemon failure and
  remains reusable.

Plus the non-fork shipping path: under ``spawn`` the process executor must
publish state to shared memory instead of pickling it per worker
(``REPRO_MP_START_METHOD`` forces the start method for the test).
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

import pytest

from repro.engine import QueryEngine
from repro.engine.daemons import MAX_TASK_RETRIES, DaemonPool
from repro.engine.executors import DaemonExecutor, _process_context, make_executor
from repro.engine.queries import ReachQuery
from repro.exceptions import DaemonError, EngineError
from repro.graph.generators import random_graph
from repro.service import GraphService, ReachRequest, ServiceConfig
from repro.updates.delta import GraphDelta

ALPHA = 0.1


# --------------------------------------------------------------------------- #
# Module-level chunk functions (pickled by reference into the daemons)
# --------------------------------------------------------------------------- #
def _echo_chunk(state, task):
    """The well-behaved baseline: scale each item by the shared factor."""
    return [state["factor"] * item for item in task]


def _suicide_chunk(state, task):
    """Every attempt dies mid-chunk: the pool must give up with DaemonError."""
    os.kill(os.getpid(), signal.SIGKILL)


def _flaky_chunk(state, task):
    """Dies mid-chunk on the first attempt only; retries must complete."""
    marker, items = task
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return [state["factor"] * item for item in items]


def _error_chunk(state, task):
    raise ValueError("chunk exploded")


@pytest.fixture
def graph():
    return random_graph(num_nodes=250, num_edges=1000, seed=11)


@pytest.fixture
def queries(graph):
    nodes = list(graph.nodes())
    return [ReachQuery(nodes[i], nodes[-1 - i]) for i in range(24)]


class TestDaemonPool:
    def test_plain_state_round_trip(self):
        state = {"factor": 3}
        with DaemonPool(workers=2) as pool:
            results = pool.run(state, [[1, 2], [3], [4, 5, 6]], chunk_fn=_echo_chunk)
            assert results == [[3, 6], [9], [12, 15, 18]]
            assert len(pool.worker_pids()) == 2

    def test_empty_batch_never_starts_workers(self):
        with DaemonPool(workers=2) as pool:
            assert pool.run({"factor": 1}, [], chunk_fn=_echo_chunk) == []
            assert not pool.started

    def test_kill_between_batches_restarts_and_answers(self):
        from repro import obs

        state = {"factor": 2}
        restarts_before = obs.snapshot()["counters"].get("daemon.restarts", 0)
        with DaemonPool(workers=2) as pool:
            assert pool.run(state, [[1], [2]], chunk_fn=_echo_chunk) == [[2], [4]]
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            assert pool.run(state, [[5], [6]], chunk_fn=_echo_chunk) == [[10], [12]]
            assert pool.restarts >= 1
            assert victim not in pool.worker_pids()
        # The restart is also visible in the global metrics registry (the
        # service-level report a production snapshot would show).
        assert obs.snapshot()["counters"].get("daemon.restarts", 0) > restarts_before

    def test_sigkill_mid_chunk_retries_and_completes(self, tmp_path):
        """The first attempt dies mid-chunk; the retry finishes the batch."""
        state = {"factor": 10}
        marker = str(tmp_path / "first-attempt")
        with DaemonPool(workers=2) as pool:
            results = pool.run(
                state,
                [(marker, [1, 2]), (str(tmp_path / "other"), [3])],
                chunk_fn=_flaky_chunk,
            )
            assert results == [[10, 20], [30]]
            assert pool.restarts >= 1

    def test_poison_chunk_raises_typed_error_and_pool_survives(self):
        state = {"factor": 1}
        with DaemonPool(workers=2) as pool:
            with pytest.raises(DaemonError) as excinfo:
                pool.run(state, [[1]], chunk_fn=_suicide_chunk)
            assert isinstance(excinfo.value, EngineError)  # typed, catchable
            assert pool.restarts >= MAX_TASK_RETRIES + 1
            # The pool is immediately reusable for the next batch.
            assert pool.run(state, [[7]], chunk_fn=_echo_chunk) == [[7]]

    def test_worker_exception_raises_without_killing_pool(self):
        state = {"factor": 1}
        with DaemonPool(workers=2) as pool:
            pids = None
            pool.run(state, [[1]], chunk_fn=_echo_chunk)
            pids = pool.worker_pids()
            with pytest.raises(DaemonError, match="chunk exploded"):
                pool.run(state, [[1]], chunk_fn=_error_chunk)
            assert pool.worker_pids() == pids  # an exception is not a crash
            assert pool.run(state, [[2]], chunk_fn=_echo_chunk) == [[2]]

    def test_ping_detects_death_and_optionally_revives(self):
        with DaemonPool(workers=2) as pool:
            pool.run({"factor": 1}, [[1]], chunk_fn=_echo_chunk)
            assert pool.ping() == [True, True]
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            time.sleep(0.1)
            assert pool.ping(timeout=2.0) == [False, True]
            assert pool.ping(timeout=2.0, restart=True) == [False, True]  # revived after
            assert pool.ping(timeout=2.0) == [True, True]

    def test_closed_pool_raises_typed_error(self):
        pool = DaemonPool(workers=1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(DaemonError):
            pool.run({"factor": 1}, [[1]], chunk_fn=_echo_chunk)

    def test_republish_on_new_version_only(self):
        state = {"factor": 2}
        with DaemonPool(workers=1) as pool:
            pool.run(state, [[1]], chunk_fn=_echo_chunk, version=1)
            seq = pool._state_seq
            pool.run(state, [[1]], chunk_fn=_echo_chunk, version=1)
            assert pool._state_seq == seq  # warm: same version, no republish
            pool.run({"factor": 5}, [[1]], chunk_fn=_echo_chunk, version=2)
            assert pool._state_seq == seq + 1


class TestDaemonExecutor:
    def test_registered_in_executor_registry(self):
        runner = make_executor("daemon", workers=2)
        assert isinstance(runner, DaemonExecutor)
        assert runner.name == "daemon"

    def test_unbound_executor_raises_engine_error(self):
        runner = make_executor("daemon")
        with pytest.raises(EngineError, match="bound DaemonPool"):
            runner.run({"factor": 1}, [[1]], chunk_fn=_echo_chunk)

    def test_unbound_executor_accepts_empty_batch(self):
        assert make_executor("daemon").run({"factor": 1}, []) == []

    def test_engine_kill_all_workers_mid_service(self, graph, queries):
        """Killing every daemon between batches never surfaces to callers."""
        with QueryEngine(graph, cache_size=0) as engine:
            serial = engine.answer_batch(queries, ALPHA)
            daemon = engine.answer_batch(queries, ALPHA, executor="daemon", workers=2)
            assert [a.reachable for a in daemon] == [a.reachable for a in serial]
            for pid in engine.daemon_pool().worker_pids():
                os.kill(pid, signal.SIGKILL)
            again = engine.answer_batch(queries, ALPHA, executor="daemon", workers=2)
            assert [a.reachable for a in again] == [a.reachable for a in serial]
            assert engine.daemon_pool().restarts >= 2


class TestServiceAdmission:
    def test_daemon_failure_releases_admission_and_service_reusable(
        self, graph, queries, monkeypatch
    ):
        """A DaemonError mid-submit must not leak admission slots."""
        requests = [ReachRequest(q.source, q.target) for q in queries[:6]]
        service = GraphService(
            graph, ServiceConfig(executor="daemon", workers=2, cache_size=0, max_inflight=4)
        )
        with service:
            baseline = asyncio.run(service.submit(requests[0], alpha=ALPHA))
            assert baseline.value is not None

            def poisoned_run(self, state, tasks, chunk_fn=None, version=None):
                raise DaemonError("injected daemon failure")

            monkeypatch.setattr(DaemonPool, "run", poisoned_run)
            with pytest.raises(EngineError):
                asyncio.run(service.submit(requests[1], alpha=ALPHA))
            assert service._frontend.admission.inflight == 0  # slot released
            monkeypatch.undo()

            answers = [
                asyncio.run(service.submit(request, alpha=ALPHA)) for request in requests
            ]
            assert all(answer.value is not None for answer in answers)
            assert service._frontend.admission.inflight == 0


class TestSpawnShipping:
    def test_env_override_selects_start_method(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START_METHOD", "spawn")
        assert _process_context().get_start_method() == "spawn"
        monkeypatch.delenv("REPRO_MP_START_METHOD")
        assert _process_context().get_start_method() in ("fork", "spawn", "forkserver")

    def test_process_executor_parity_under_spawn(self, graph, queries, monkeypatch):
        """Non-fork start methods attach shared state instead of pickling it."""
        monkeypatch.setenv("REPRO_MP_START_METHOD", "spawn")
        engine = QueryEngine(graph, cache_size=0)
        serial = engine.answer_batch(queries, ALPHA)
        spawned = engine.answer_batch(queries, ALPHA, executor="process", workers=2)
        assert [a.reachable for a in spawned] == [a.reachable for a in serial]

    def test_spawn_run_leaves_no_segments(self, graph, queries, monkeypatch):
        from repro.graph.shm import active_segments

        monkeypatch.setenv("REPRO_MP_START_METHOD", "spawn")
        before = set(active_segments())
        engine = QueryEngine(graph, cache_size=0)
        engine.answer_batch(queries, ALPHA, executor="process", workers=2)
        assert set(active_segments()) == before


@pytest.mark.slow_shm
class TestSoak:
    def test_daemon_soak_200_batches_no_leaks(self, graph):
        """Nightly: 200 daemon batches with periodic updates, zero leaks."""
        from repro.graph.shm import active_segments

        nodes = list(graph.nodes())
        before = set(active_segments())
        with QueryEngine(graph, cache_size=0) as engine:
            pool = None
            for batch in range(200):
                offset = batch % 40
                queries = [
                    ReachQuery(nodes[(offset + i) % len(nodes)], nodes[-1 - i])
                    for i in range(12)
                ]
                serial = engine.answer_batch(queries, ALPHA)
                daemon = engine.answer_batch(queries, ALPHA, executor="daemon", workers=2)
                assert [a.reachable for a in daemon] == [a.reachable for a in serial]
                if pool is None:
                    pool = engine.daemon_pool()
                if batch % 50 == 49:
                    delta = GraphDelta()
                    delta.add_edge(nodes[batch % len(nodes)], nodes[(batch * 7) % len(nodes)])
                    engine.update(delta)
            # Steady state: the warm pool held at most one publication's
            # segments at a time; crashes aside, the original workers served
            # every batch.
            assert pool is not None and pool.restarts == 0
        assert set(active_segments()) == before
