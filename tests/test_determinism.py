"""Workload determinism regression tests (CI reproducibility).

All sampling in ``workloads/queries.py`` and ``patterns/generator.py`` is
routed through explicit ``random.Random(seed)`` instances — never the
module-level ``random`` state — so two same-seed workloads are identical
across runs, machines and worker processes.  These tests pin that down,
including the cross-process stability of query fingerprints under different
hash-randomisation seeds (which the engine's cache and process pools rely
on).
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
from pathlib import Path

from repro.graph.generators import preferential_attachment_graph
from repro.patterns.generator import embedded_pattern, random_pattern
from repro.shard import Partition, greedy_partition, hash_partition
from repro.workloads.queries import (
    generate_pattern_workload,
    generate_reachability_workload,
    reachability_fingerprint,
    sample_mixed_pairs,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _graph():
    return preferential_attachment_graph(
        num_nodes=300, edges_per_node=2, seed=5, back_edge_probability=0.1
    )


class TestSameSeedWorkloadsIdentical:
    def test_reachability_workloads_identical(self):
        graph = _graph()
        first = generate_reachability_workload(graph, count=40, seed=17)
        second = generate_reachability_workload(graph, count=40, seed=17)
        assert first.pairs == second.pairs
        assert first.truth == second.truth

    def test_pattern_workloads_identical(self):
        graph = _graph()
        first = generate_pattern_workload(graph, shape=(4, 6), count=3, seed=17)
        second = generate_pattern_workload(graph, shape=(4, 6), count=3, seed=17)
        assert [q.personalized_match for q in first] == [
            q.personalized_match for q in second
        ]
        # GraphPattern equality covers labels, edges (in order), up and uo.
        assert [q.pattern for q in first] == [q.pattern for q in second]
        assert [q.fingerprint() for q in first] == [q.fingerprint() for q in second]

    def test_different_seeds_differ(self):
        graph = _graph()
        first = generate_reachability_workload(graph, count=40, seed=1)
        second = generate_reachability_workload(graph, count=40, seed=2)
        assert first.pairs != second.pairs

    def test_mixed_pair_sampler_deterministic(self):
        """The benchmark sampler shares the same contract as the workloads."""
        graph = _graph()
        first = sample_mixed_pairs(graph, count=50, seed=6)
        second = sample_mixed_pairs(graph, count=50, seed=6)
        assert first == second
        assert len(first) == 50
        assert all(source in graph and target in graph for source, target in first)


class TestGeneratorsIgnoreGlobalRandomState:
    """Sampling must not consume or depend on the module-level ``random``."""

    def test_embedded_pattern_unaffected_by_global_seed(self):
        graph = _graph()
        random.seed(0)
        first = embedded_pattern(graph, num_nodes=4, num_edges=5, seed=23)
        random.seed(99999)
        second = embedded_pattern(graph, num_nodes=4, num_edges=5, seed=23)
        assert first == second

    def test_random_pattern_unaffected_by_global_seed(self):
        random.seed(0)
        first = random_pattern(4, 6, alphabet=["A", "B", "C"], seed=23)
        random.seed(99999)
        second = random_pattern(4, 6, alphabet=["A", "B", "C"], seed=23)
        assert first == second

    def test_workload_does_not_disturb_global_stream(self):
        """Generating a workload must not advance the global random stream."""
        graph = _graph()
        random.seed(42)
        before = random.random()
        random.seed(42)
        generate_reachability_workload(graph, count=10, seed=3)
        generate_pattern_workload(graph, shape=(4, 5), count=1, seed=3)
        after = random.random()
        assert before == after


class TestCrossProcessFingerprints:
    """Fingerprints must agree across interpreters with different hash seeds."""

    def _fingerprint_in_subprocess(self, hash_seed: str) -> str:
        code = (
            "from repro.workloads.queries import reachability_fingerprint;"
            "print(reachability_fingerprint(('node', 3), 'target'))"
        )
        env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=SRC)
        return subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        ).stdout.strip()

    def test_fingerprint_survives_hash_randomisation(self):
        local = reachability_fingerprint(("node", 3), "target")
        assert self._fingerprint_in_subprocess("1") == local
        assert self._fingerprint_in_subprocess("2") == local


class TestPartitionerDeterminism:
    """Same seed ⇒ identical shard assignment, in- and across processes.

    The sharded engine ships per-shard prepared state to worker processes
    and serialises partitions to disk; both rely on the partitioners being
    pure functions of ``(graph, k, seed)`` with no dependence on Python's
    randomised ``hash``.
    """

    # One assignment digest per (method, hash seed) is computed in a child
    # interpreter over the same generated graph and compared to the parent's.
    _CODE = (
        "import hashlib;"
        "from repro.graph.generators import preferential_attachment_graph;"
        "from repro.shard import greedy_partition, hash_partition;"
        "g = preferential_attachment_graph(num_nodes=300, edges_per_node=2, seed=5,"
        " back_edge_probability=0.1);"
        "p = {method}(g, 4, seed=9);"
        "print(hashlib.sha1(repr(sorted((repr(n), s) for n, s in"
        " p.assignment.items())).encode()).hexdigest())"
    )

    def _digest_in_subprocess(self, method: str, hash_seed: str) -> str:
        env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=SRC)
        return subprocess.run(
            [sys.executable, "-c", self._CODE.format(method=method)],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        ).stdout.strip()

    @staticmethod
    def _digest(partition) -> str:
        import hashlib

        return hashlib.sha1(
            repr(sorted((repr(n), s) for n, s in partition.assignment.items())).encode()
        ).hexdigest()

    def test_same_seed_identical_in_process(self):
        graph = _graph()
        first = greedy_partition(graph, 4, seed=9)
        second = greedy_partition(graph, 4, seed=9)
        assert first.assignment == second.assignment
        assert first.boundary == second.boundary
        assert hash_partition(graph, 4).assignment == hash_partition(graph, 4).assignment

    def test_different_seeds_differ(self):
        graph = _graph()
        first = greedy_partition(graph, 4, seed=1)
        second = greedy_partition(graph, 4, seed=2)
        assert first.assignment != second.assignment

    def test_assignment_survives_hash_randomisation(self):
        graph = _graph()
        for method, build in (("greedy_partition", greedy_partition), ("hash_partition", hash_partition)):
            local = self._digest(build(graph, 4, seed=9))
            assert self._digest_in_subprocess(method, "1") == local
            assert self._digest_in_subprocess(method, "2") == local

    def test_partition_round_trips_through_serialisation(self):
        graph = _graph()
        partition = greedy_partition(graph, 4, seed=9)
        loaded = Partition.from_json(partition.to_json())
        assert loaded.assignment == partition.assignment
        assert loaded.boundary == partition.boundary
        assert loaded.num_shards == partition.num_shards
        assert loaded.method == partition.method
        assert loaded.seed == partition.seed
        assert loaded.cut_edges == partition.cut_edges
        assert loaded.total_edges == partition.total_edges
        # Serialisation is itself deterministic (sorted keys, ordered pairs).
        assert loaded.to_json() == partition.to_json()
