"""Unit tests for the core DiGraph data structure."""

import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = DiGraph()
        assert graph.num_nodes() == 0
        assert graph.num_edges() == 0
        assert graph.size() == 0
        assert list(graph.nodes()) == []
        assert list(graph.edges()) == []

    def test_add_nodes_and_edges(self):
        graph = DiGraph()
        graph.add_node(1, "A")
        graph.add_node(2, "B")
        assert graph.add_edge(1, 2) is True
        assert graph.num_nodes() == 2
        assert graph.num_edges() == 1
        assert graph.size() == 3
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(2, 1)

    def test_parallel_edges_collapse(self):
        graph = DiGraph()
        graph.add_node("a")
        graph.add_node("b")
        assert graph.add_edge("a", "b") is True
        assert graph.add_edge("a", "b") is False
        assert graph.num_edges() == 1

    def test_add_edge_unknown_endpoint_raises(self):
        graph = DiGraph()
        graph.add_node("a")
        with pytest.raises(NodeNotFoundError):
            graph.add_edge("a", "missing")
        with pytest.raises(NodeNotFoundError):
            graph.add_edge("missing", "a")

    def test_from_edges_builds_nodes_and_labels(self):
        graph = DiGraph.from_edges([(1, 2), (2, 3)], labels={1: "A", 3: "C"}, default_label="X")
        assert graph.num_nodes() == 3
        assert graph.label(1) == "A"
        assert graph.label(2) == "X"
        assert graph.label(3) == "C"
        assert graph.has_edge(1, 2)

    def test_from_edges_includes_isolated_labeled_nodes(self):
        graph = DiGraph.from_edges([(1, 2)], labels={5: "Z"})
        assert 5 in graph
        assert graph.degree(5) == 0

    def test_relabel(self):
        graph = DiGraph()
        graph.add_node("n", "old")
        graph.relabel("n", "new")
        assert graph.label("n") == "new"
        with pytest.raises(NodeNotFoundError):
            graph.relabel("missing", "x")

    def test_add_existing_node_relabels(self):
        graph = DiGraph()
        graph.add_node("n", "one")
        graph.add_node("n", "two")
        assert graph.num_nodes() == 1
        assert graph.label("n") == "two"


class TestRemoval:
    def test_remove_edge(self):
        graph = DiGraph.from_edges([(1, 2)])
        graph.remove_edge(1, 2)
        assert graph.num_edges() == 0
        assert not graph.has_edge(1, 2)

    def test_remove_missing_edge_raises(self):
        graph = DiGraph.from_edges([(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(2, 1)

    def test_remove_node_removes_incident_edges(self):
        graph = DiGraph.from_edges([(1, 2), (2, 3), (3, 1)])
        graph.remove_node(2)
        assert 2 not in graph
        assert graph.num_edges() == 1
        assert graph.has_edge(3, 1)

    def test_remove_missing_node_raises(self):
        graph = DiGraph()
        with pytest.raises(NodeNotFoundError):
            graph.remove_node("ghost")


class TestInspection:
    def test_neighbors_and_degrees(self):
        graph = DiGraph.from_edges([(1, 2), (3, 1), (1, 4)])
        assert graph.successors(1) == {2, 4}
        assert graph.predecessors(1) == {3}
        assert graph.neighbors(1) == {2, 3, 4}
        assert graph.out_degree(1) == 2
        assert graph.in_degree(1) == 1
        assert graph.degree(1) == 3

    def test_degree_counts_distinct_neighbors(self):
        # A reciprocal edge pair contributes a single neighbour.
        graph = DiGraph.from_edges([(1, 2), (2, 1)])
        assert graph.degree(1) == 1

    def test_unknown_node_lookups_raise(self):
        graph = DiGraph()
        with pytest.raises(NodeNotFoundError):
            graph.successors("x")
        with pytest.raises(NodeNotFoundError):
            graph.label("x")

    def test_max_degree(self):
        graph = DiGraph.from_edges([(0, 1), (0, 2), (0, 3), (1, 2)])
        assert graph.max_degree() == 3
        assert DiGraph().max_degree() == 0

    def test_nodes_with_label(self):
        graph = DiGraph()
        graph.add_node(1, "A")
        graph.add_node(2, "B")
        graph.add_node(3, "A")
        assert graph.nodes_with_label("A") == {1, 3}
        assert graph.nodes_with_label("missing") == set()

    def test_distinct_labels(self):
        graph = DiGraph()
        graph.add_node(1, "A")
        graph.add_node(2, "A")
        graph.add_node(3, "B")
        assert graph.distinct_labels() == {"A", "B"}

    def test_len_iter_contains(self):
        graph = DiGraph.from_edges([(1, 2), (2, 3)])
        assert len(graph) == 3
        assert set(iter(graph)) == {1, 2, 3}
        assert 1 in graph and 9 not in graph

    def test_repr(self):
        graph = DiGraph.from_edges([(1, 2)])
        assert "nodes=2" in repr(graph)
        assert "edges=1" in repr(graph)

    def test_equality(self):
        first = DiGraph.from_edges([(1, 2)], labels={1: "A", 2: "B"})
        second = DiGraph.from_edges([(1, 2)], labels={1: "A", 2: "B"})
        third = DiGraph.from_edges([(2, 1)], labels={1: "A", 2: "B"})
        assert first == second
        assert first != third

    def test_graphs_are_unhashable(self):
        with pytest.raises(TypeError):
            hash(DiGraph())


class TestCopyAndValidate:
    def test_copy_is_independent(self):
        graph = DiGraph.from_edges([(1, 2)], labels={1: "A", 2: "B"})
        clone = graph.copy()
        clone.add_node(3, "C")
        clone.add_edge(2, 3)
        assert 3 not in graph
        assert graph.num_edges() == 1
        assert clone.num_edges() == 2

    def test_validate_passes_for_consistent_graph(self):
        graph = DiGraph.from_edges([(1, 2), (2, 3)])
        graph.validate()

    def test_validate_detects_corruption(self):
        graph = DiGraph.from_edges([(1, 2)])
        graph._edge_count = 5  # simulate corruption
        with pytest.raises(GraphError):
            graph.validate()
