"""Tests for the batched query engine (``repro.engine``).

The load-bearing property is the parity contract: for any executor and
worker count, batch answers are bit-identical to the serial path — asserted
field-by-field on the answer objects, not just on the Boolean verdicts.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import (
    AnswerCache,
    PatternQuery,
    PreparedGraph,
    QueryEngine,
    ReachQuery,
    make_executor,
)
from repro.exceptions import EngineError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.updates.delta import GraphDelta
from repro.workloads.queries import (
    generate_pattern_workload,
    generate_reachability_workload,
    pattern_fingerprint,
    reachability_fingerprint,
)

ALPHA = 0.05


def _reach_signature(answer):
    return (answer.reachable, answer.visited, answer.met_at, answer.exhausted)


def _pattern_signature(answer):
    return (frozenset(answer.answer), answer.subgraph_size)


@pytest.fixture(scope="module")
def served_graph():
    """A 600-node scale-free graph (module copy of the session fixture)."""
    from repro.graph.generators import preferential_attachment_graph

    return preferential_attachment_graph(
        num_nodes=600, edges_per_node=2, seed=13, back_edge_probability=0.08
    )


@pytest.fixture(scope="module")
def reach_queries(served_graph):
    workload = generate_reachability_workload(served_graph, count=60, seed=4)
    return [ReachQuery(source, target) for source, target in workload.pairs]


@pytest.fixture(scope="module")
def pattern_queries(served_graph):
    workload = generate_pattern_workload(served_graph, shape=(4, 6), count=3, seed=4)
    return [PatternQuery(query.pattern, query.personalized_match) for query in workload]


class TestConstruction:
    def test_digraph_is_mirrored_to_csr(self, served_graph):
        engine = QueryEngine(served_graph)
        assert engine.backend == "CSRGraph"
        assert engine.prepared.original is served_graph

    def test_mirror_never_serves_the_digraph(self, served_graph):
        engine = QueryEngine(served_graph, mirror="never")
        assert engine.backend == "DiGraph"

    def test_csr_input_is_served_directly(self, served_graph):
        frozen = CSRGraph.from_digraph(served_graph)
        engine = QueryEngine(frozen)
        assert engine.backend == "CSRGraph"
        assert engine.prepared.graph is frozen

    def test_unknown_mirror_policy_rejected(self, served_graph):
        with pytest.raises(EngineError):
            QueryEngine(served_graph, mirror="sometimes")

    def test_precomputed_compression_is_reused(self, served_graph):
        from repro.reachability.compression import compress

        compressed = compress(served_graph)
        engine = QueryEngine(served_graph, mirror="never", compressed=compressed)
        assert engine.prepared.compressed() is compressed
        index = engine.prepared.reachability_index(ALPHA)
        assert index.compressed is compressed

    def test_precomputed_compression_requires_matching_substrate(self, served_graph):
        from repro.reachability.compression import compress

        compressed = compress(served_graph)
        # mirror="auto" freezes to CSR, which the DiGraph condensation does
        # not describe — the engine must refuse rather than serve wrong state.
        with pytest.raises(EngineError):
            QueryEngine(served_graph, compressed=compressed)

    def test_statistics_built_once(self, served_graph):
        engine = QueryEngine(served_graph)
        assert engine.statistics["nodes"] == served_graph.num_nodes()
        assert engine.statistics["edges"] == served_graph.num_edges()
        assert engine.statistics["max_degree"] == served_graph.max_degree()

    def test_both_backends_answer_identically(self, served_graph, reach_queries):
        mutable = QueryEngine(served_graph, mirror="never")
        frozen = QueryEngine(CSRGraph.from_digraph(served_graph))
        left = mutable.answer_batch(reach_queries, ALPHA)
        right = frozen.answer_batch(reach_queries, ALPHA)
        assert [_reach_signature(a) for a in left] == [_reach_signature(a) for a in right]


class TestExecutorParity:
    @pytest.mark.parametrize("executor", ["thread", "process", "daemon"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_reach_parity(self, served_graph, reach_queries, executor, workers):
        with QueryEngine(served_graph, cache_size=0) as engine:
            serial = engine.answer_batch(reach_queries, ALPHA)
            parallel = engine.answer_batch(
                reach_queries, ALPHA, executor=executor, workers=workers
            )
        assert [_reach_signature(a) for a in serial] == [_reach_signature(a) for a in parallel]

    @pytest.mark.parametrize("executor", ["thread", "process", "daemon"])
    def test_pattern_parity(self, served_graph, pattern_queries, executor):
        with QueryEngine(served_graph, cache_size=0) as engine:
            serial = engine.answer_batch(pattern_queries, ALPHA)
            parallel = engine.answer_batch(pattern_queries, ALPHA, executor=executor, workers=2)
        assert [_pattern_signature(a) for a in serial] == [
            _pattern_signature(a) for a in parallel
        ]

    def test_daemon_parity_across_update(self, served_graph, reach_queries):
        """Warm daemons republish after ``update``: answers stay bit-identical."""
        delta = GraphDelta()
        nodes = list(served_graph.nodes())[:8]
        for source, target in zip(nodes, nodes[1:]):
            delta.add_edge(source, target)
        with QueryEngine(served_graph, cache_size=0) as engine:
            before = engine.answer_batch(reach_queries, ALPHA, executor="daemon", workers=2)
            assert [_reach_signature(a) for a in before] == [
                _reach_signature(a) for a in engine.answer_batch(reach_queries, ALPHA)
            ]
            pool = engine.daemon_pool()
            pids = pool.worker_pids()
            engine.update(delta)
            after = engine.answer_batch(reach_queries, ALPHA, executor="daemon", workers=2)
            # Same warm workers, republished state, serial-identical answers.
            assert pool.worker_pids() == pids
            assert [_reach_signature(a) for a in after] == [
                _reach_signature(a) for a in engine.answer_batch(reach_queries, ALPHA)
            ]

    def test_mixed_kind_batch_parity(self, served_graph, reach_queries, pattern_queries):
        engine = QueryEngine(served_graph, cache_size=0)
        batch = list(reach_queries[:10]) + list(pattern_queries) + list(reach_queries[10:20])
        serial = engine.answer_batch(batch, ALPHA)
        threaded = engine.answer_batch(batch, ALPHA, executor="thread", workers=3)
        assert len(serial) == len(batch)
        for query, left, right in zip(batch, serial, threaded):
            if isinstance(query, ReachQuery):
                assert _reach_signature(left) == _reach_signature(right)
            else:
                assert _pattern_signature(left) == _pattern_signature(right)

    def test_unknown_executor_rejected(self, served_graph, reach_queries):
        engine = QueryEngine(served_graph)
        with pytest.raises(EngineError):
            engine.answer_batch(reach_queries, ALPHA, executor="gpu")

    def test_make_executor_rejects_unknown_name(self):
        with pytest.raises(EngineError):
            make_executor("fleet")

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        indices=st.lists(st.integers(min_value=0, max_value=599), min_size=2, max_size=24),
        workers=st.integers(min_value=1, max_value=5),
        alpha=st.sampled_from([0.01, 0.05, 0.2]),
    )
    def test_parity_property(self, served_graph, indices, workers, alpha):
        """Serial and threaded answers agree for arbitrary batches/worker counts."""
        pairs = list(zip(indices, indices[1:]))
        queries = [ReachQuery(source, target) for source, target in pairs]
        engine = QueryEngine(served_graph, cache_size=0)
        serial = engine.answer_batch(queries, alpha)
        threaded = engine.answer_batch(queries, alpha, executor="thread", workers=workers)
        assert [_reach_signature(a) for a in serial] == [_reach_signature(a) for a in threaded]


class TestCache:
    def test_second_batch_is_all_hits(self, served_graph, reach_queries):
        engine = QueryEngine(served_graph)
        cold = engine.run_batch(reach_queries, ALPHA)
        warm = engine.run_batch(reach_queries, ALPHA)
        assert cold.cache_hits == 0 and cold.cache_misses == len(reach_queries)
        assert warm.cache_hits == len(reach_queries) and warm.cache_misses == 0
        assert [_reach_signature(a) for a in cold.answers] == [
            _reach_signature(a) for a in warm.answers
        ]

    def test_alpha_change_misses_and_recomputes(self, served_graph, reach_queries):
        """A cached answer for one α must never serve a query at another α."""
        engine = QueryEngine(served_graph)
        engine.run_batch(reach_queries, 0.01)
        other = engine.run_batch(reach_queries, 0.2)
        assert other.cache_hits == 0 and other.cache_misses == len(reach_queries)
        # And the recomputed answers match a fresh engine at that α exactly.
        fresh = QueryEngine(served_graph).run_batch(reach_queries, 0.2)
        assert [_reach_signature(a) for a in other.answers] == [
            _reach_signature(a) for a in fresh.answers
        ]

    def test_graph_change_means_new_engine_and_cold_cache(self, served_graph):
        """Caches are engine-scoped: a changed graph gets a fresh engine/cache."""
        engine = QueryEngine(served_graph)
        pair = next(iter(served_graph.edges()))
        engine.answer_batch([ReachQuery(*pair)], ALPHA)

        mutated = served_graph.copy() if hasattr(served_graph, "copy") else None
        if mutated is None:
            mutated = DiGraph()
            for node in served_graph.nodes():
                mutated.add_node(node, served_graph.label(node))
            for source, target in served_graph.edges():
                mutated.add_edge(source, target)
        mutated.add_node("fresh-node", "Z")
        mutated.add_edge(pair[0], "fresh-node")

        rebuilt = QueryEngine(mutated)
        report = rebuilt.run_batch([ReachQuery(*pair)], ALPHA)
        assert report.cache_hits == 0  # nothing leaked across engines

    def test_cache_disabled_by_zero_capacity(self, served_graph, reach_queries):
        engine = QueryEngine(served_graph, cache_size=0)
        engine.run_batch(reach_queries, ALPHA)
        again = engine.run_batch(reach_queries, ALPHA)
        assert again.cache_hits == 0

    def test_clear_cache_resets(self, served_graph, reach_queries):
        engine = QueryEngine(served_graph)
        engine.run_batch(reach_queries, ALPHA)
        engine.clear_cache()
        report = engine.run_batch(reach_queries, ALPHA)
        assert report.cache_hits == 0
        assert engine.cache_stats().entries == len(reach_queries)

    def test_lru_eviction_order(self):
        cache = AnswerCache(capacity=2)
        cache.put("a", 0.1, 1)
        cache.put("b", 0.1, 2)
        assert cache.get("a", 0.1) == (True, 1)  # refresh "a"
        cache.put("c", 0.1, 3)  # evicts "b", the least recently used
        assert cache.get("b", 0.1) == (False, None)
        assert cache.get("a", 0.1) == (True, 1)
        assert cache.get("c", 0.1) == (True, 3)

    def test_stats_hit_rate(self):
        cache = AnswerCache(capacity=4)
        cache.put("x", 0.5, "answer")
        cache.get("x", 0.5)
        cache.get("y", 0.5)
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5


class TestFingerprints:
    def test_reach_fingerprint_stable_and_distinct(self):
        assert reachability_fingerprint(1, 2) == reachability_fingerprint(1, 2)
        assert reachability_fingerprint(1, 2) != reachability_fingerprint(2, 1)
        assert ReachQuery(1, 2).fingerprint() == reachability_fingerprint(1, 2)

    def test_pattern_fingerprint_covers_match_and_semantics(self, served_graph):
        workload = generate_pattern_workload(served_graph, shape=(4, 5), count=1, seed=2)
        query = workload.queries[0]
        assert query.fingerprint() == pattern_fingerprint(
            query.pattern, query.personalized_match
        )
        sim = PatternQuery(query.pattern, query.personalized_match, semantics="simulation")
        sub = PatternQuery(query.pattern, query.personalized_match, semantics="subgraph")
        assert sim.fingerprint() != sub.fingerprint()
        other_match = PatternQuery(query.pattern, "someone-else")
        assert sim.fingerprint() != other_match.fingerprint()

    def test_pattern_query_rejects_unknown_semantics(self, served_graph):
        workload = generate_pattern_workload(served_graph, shape=(4, 5), count=1, seed=2)
        query = workload.queries[0]
        with pytest.raises(EngineError):
            PatternQuery(query.pattern, query.personalized_match, semantics="vf3")


class TestReportAndConvenience:
    def test_report_telemetry(self, served_graph, reach_queries):
        engine = QueryEngine(served_graph)
        report = engine.run_batch(reach_queries, ALPHA, executor="thread", workers=2)
        assert report.executor == "thread" and report.workers == 2
        assert report.wall_seconds > 0 and report.throughput > 0
        assert report.kinds == {"reach": len(reach_queries)}
        assert report.chunks >= 1
        # The composition describes the batch even when fully cache-served.
        warm = engine.run_batch(reach_queries, ALPHA)
        assert warm.kinds == {"reach": len(reach_queries)}
        assert warm.chunks == 0

    def test_answer_reachability_matches_query_many(self, served_graph):
        workload = generate_reachability_workload(served_graph, count=25, seed=11)
        engine = QueryEngine(served_graph, mirror="never")
        mapping = engine.answer_reachability(workload.pairs, ALPHA)
        direct = engine.prepared.rbreach(ALPHA).query_many(workload.pairs)
        assert mapping == direct

    def test_answer_patterns_matches_matcher(self, served_graph):
        workload = generate_pattern_workload(served_graph, shape=(4, 5), count=2, seed=3)
        engine = QueryEngine(served_graph)
        answers = engine.answer_patterns(
            [(query.pattern, query.personalized_match) for query in workload], ALPHA
        )
        matcher = engine.prepared.rbsim(ALPHA)
        expected = [
            matcher.answer(query.pattern, query.personalized_match) for query in workload
        ]
        assert [a.answer for a in answers] == [e.answer for e in expected]

    def test_invalid_alpha_rejected(self, served_graph, reach_queries):
        engine = QueryEngine(served_graph)
        with pytest.raises(EngineError):
            engine.answer_batch(reach_queries, 0.0)

    def test_empty_batch(self, served_graph):
        engine = QueryEngine(served_graph)
        report = engine.run_batch([], ALPHA)
        assert report.answers == [] and report.chunks == 0

    def test_prepare_returns_self_and_builds_index(self, served_graph):
        engine = QueryEngine(served_graph)
        assert engine.prepare(reach_alphas=[ALPHA]) is engine
        assert engine.index_build_seconds(ALPHA) > 0
        assert engine.prepared.reachability_index(ALPHA).size() > 0

    def test_prepared_rejects_unknown_kind(self, served_graph):
        prepared = PreparedGraph(served_graph)
        with pytest.raises(EngineError):
            prepared.prepare("teleport", ALPHA)


class TestCliBatch:
    def test_batch_smoke(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "batch",
                    "--dataset",
                    "youtube-small",
                    "--count",
                    "20",
                    "--alpha",
                    "0.05",
                    "--repeat",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "cache hits=20" in out  # second run served from the LRU cache

    def test_batch_thread_executor_with_compare(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "batch",
                    "--count",
                    "15",
                    "--executor",
                    "thread",
                    "--workers",
                    "2",
                    "--compare-serial",
                ]
            )
            == 0
        )
        assert "identical answers" in capsys.readouterr().out

    def test_batch_pattern_kind(self, capsys):
        from repro.cli import main

        assert main(["batch", "--kind", "sim", "--count", "2", "--alpha", "0.02"]) == 0
        assert "kind=sim" in capsys.readouterr().out

    def test_batch_queries_file(self, tmp_path, capsys):
        from repro.cli import main

        queries = tmp_path / "queries.txt"
        queries.write_text("# reach pairs\n1 2\n5 9\n", encoding="utf-8")
        output = tmp_path / "report.json"
        assert (
            main(["batch", "--queries", str(queries), "--output", str(output)]) == 0
        )
        import json

        payload = json.loads(output.read_text(encoding="utf-8"))
        assert payload["num_queries"] == 2
        assert payload["runs"][0]["cache_misses"] == 2

    def test_batch_warns_on_unknown_node_ids(self, tmp_path, capsys):
        from repro.cli import main

        queries = tmp_path / "queries.txt"
        queries.write_text("1 2\nno-such-node 99999999\n", encoding="utf-8")
        assert main(["batch", "--queries", str(queries)]) == 0
        captured = capsys.readouterr()
        assert "not in dataset" in captured.err

    def test_batch_rejects_malformed_queries_file(self, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.txt"
        bad.write_text("1 2 3\n", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["batch", "--queries", str(bad)])

    def test_run_accepts_executor_flag(self):
        from repro.cli import main

        assert main(["run", "fig8m", "--executor", "thread", "--workers", "2"]) == 0
