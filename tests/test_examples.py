"""Smoke tests that run every example script end to end (scaled down).

The examples are part of the public deliverable; these tests import each one
as a module and run its ``main`` with small inputs so regressions in the
public API surface are caught by the test suite rather than by users.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    """Import an example script as a module without executing ``main``."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"examples_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExampleScripts:
    def test_examples_directory_contains_at_least_three_scripts(self):
        scripts = sorted(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 3
        assert (EXAMPLES_DIR / "quickstart.py").exists()

    def test_quickstart_runs(self, capsys):
        module = load_example("quickstart.py")
        module.main()
        output = capsys.readouterr().out
        assert "resource-bounded answer" in output
        assert "cl3" in output and "cl4" in output
        assert "Michael -> Eric : True" in output

    def test_personalized_social_search_runs(self, capsys, monkeypatch):
        module = load_example("personalized_social_search.py")
        monkeypatch.setattr(module, "NUM_QUERIES", 2)
        monkeypatch.setattr(sys, "argv", ["personalized_social_search.py", "1200"])
        module.main()
        output = capsys.readouterr().out
        assert "mean time per query" in output
        assert "RBSim mean accuracy" in output

    def test_reachability_example_runs(self, capsys, monkeypatch):
        module = load_example("reachability_within_budget.py")
        monkeypatch.setattr(module, "NUM_QUERIES", 20)
        monkeypatch.setattr(module, "ALPHAS", (0.01,))
        monkeypatch.setattr(sys, "argv", ["reachability_within_budget.py", "1500"])
        module.main()
        output = capsys.readouterr().out
        assert "RBReach" in output
        assert "BFS" in output

    def test_tradeoff_example_runs(self, capsys, monkeypatch):
        module = load_example("resource_accuracy_tradeoff.py")
        monkeypatch.setattr(module, "PATTERN_ALPHAS", (0.005, 0.05))
        monkeypatch.setattr(module, "REACH_ALPHAS", (0.01, 0.05))

        def small_graph(num_nodes=6000):
            from repro import youtube_like

            return youtube_like(num_nodes=1200)

        monkeypatch.setattr(module, "youtube_like", small_graph)
        module.main()
        output = capsys.readouterr().out
        assert "accuracy vs alpha" in output
        assert "#" in output
