"""Tests for the experiment drivers (pattern and reachability sweeps)."""

import pytest

from repro.experiments import patterns as pattern_experiments
from repro.experiments import reachability as reach_experiments
from repro.experiments.records import ExperimentResult, PatternRow, ReachabilityRow
from repro.graph.generators import preferential_attachment_graph
from repro.workloads.datasets import synthetic


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment_graph(700, edges_per_node=2, seed=23, back_edge_probability=0.05)


class TestPatternAlphaSweep:
    def test_rows_per_alpha(self, graph):
        result = pattern_experiments.alpha_sweep(
            graph, "toy", alphas=[0.02, 0.08], shape=(4, 5), num_queries=2, seed=1
        )
        assert isinstance(result, ExperimentResult)
        assert len(result.rows) == 2
        for row, alpha in zip(result.rows, [0.02, 0.08]):
            assert isinstance(row, PatternRow)
            assert row.alpha == alpha
            assert row.num_queries == 2
            assert 0 <= row.rbsim_accuracy <= 1
            assert 0 <= row.rbsub_accuracy <= 1
            assert row.rbsim_time > 0
            assert row.matchopt_time > 0

    def test_reduction_ratio_bounded(self, graph):
        result = pattern_experiments.alpha_sweep(
            graph, "toy", alphas=[0.05], shape=(4, 5), num_queries=2, seed=2
        )
        row = result.rows[0]
        assert 0 <= row.reduction_ratio <= 1.5
        assert row.ball_size > 0

    def test_row_dicts(self, graph):
        result = pattern_experiments.alpha_sweep(
            graph, "toy", alphas=[0.05], shape=(4, 5), num_queries=1, seed=3
        )
        dicts = result.row_dicts()
        assert dicts[0]["dataset"] == "toy"
        assert "rbsim_accuracy" in dicts[0]


class TestPatternQuerySizeSweep:
    def test_rows_per_shape(self, graph):
        result = pattern_experiments.query_size_sweep(
            graph, "toy", shapes=[(4, 5), (5, 6)], alpha=0.05, num_queries=2, seed=4
        )
        assert len(result.rows) == 2
        assert result.rows[0].x_label == "|Q|"
        assert result.rows[0].x_value == 4
        assert result.rows[1].x_value == 5


class TestPatternGraphSizeSweep:
    def test_rows_per_size(self):
        result = pattern_experiments.graph_size_sweep(
            sizes=[300, 600], alpha=0.05, shape=(4, 5), num_queries=2, seed=5
        )
        assert len(result.rows) == 2
        assert result.rows[0].dataset == "synthetic-300"
        assert result.rows[1].x_value == 600


class TestTable2:
    def test_rows_cover_datasets_and_alphas(self, graph):
        other = synthetic(400, seed=9)
        result = pattern_experiments.table2_reduction_ratio(
            {"toy": graph, "synthetic": other}, alphas=[0.02, 0.05], num_queries=2, seed=6, shape=(4, 5)
        )
        assert result.experiment_id == "table2"
        assert len(result.rows) == 4
        datasets = {row.dataset for row in result.rows}
        assert datasets == {"toy", "synthetic"}


class TestReachabilityAlphaSweep:
    def test_rows_and_metrics(self, graph):
        result = reach_experiments.alpha_sweep(
            graph, "toy", alphas=[0.02, 0.1], num_queries=30, seed=1
        )
        assert len(result.rows) == 2
        for row in result.rows:
            assert isinstance(row, ReachabilityRow)
            assert row.rbreach_false_positives == 0
            assert 0 <= row.rbreach_accuracy <= 1
            assert 0 <= row.lm_accuracy <= 1
            assert row.index_size > 0
            assert row.bfs_accuracy == 1.0

    def test_index_grows_with_alpha(self, graph):
        result = reach_experiments.alpha_sweep(
            graph, "toy", alphas=[0.02, 0.2], num_queries=20, seed=2
        )
        assert result.rows[0].index_size <= result.rows[1].index_size


class TestReachabilityGraphSizeSweep:
    def test_rows_per_size_and_alpha(self):
        result = reach_experiments.graph_size_sweep(
            sizes=[300, 600], alphas=[0.05, 0.02], num_queries=20, seed=3
        )
        assert len(result.rows) == 4
        assert {row.x_value for row in result.rows} == {300, 600}
        assert {row.alpha for row in result.rows} == {0.05, 0.02}
        assert all(row.rbreach_false_positives == 0 for row in result.rows)
