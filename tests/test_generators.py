"""Tests for the synthetic graph generators."""

import pytest

from repro.exceptions import GraphError
from repro.graph.components import is_dag
from repro.graph.generators import (
    DEFAULT_ALPHABET,
    community_graph,
    complete_bipartite_graph,
    cycle_graph,
    layered_dag,
    path_graph,
    preferential_attachment_graph,
    random_graph,
    star_graph,
)
from repro.graph.traversal import weakly_connected_components


class TestRandomGraph:
    def test_requested_sizes(self):
        graph = random_graph(100, 200, seed=1)
        assert graph.num_nodes() == 100
        assert graph.num_edges() == 200

    def test_deterministic_under_seed(self):
        assert random_graph(50, 100, seed=5) == random_graph(50, 100, seed=5)
        assert random_graph(50, 100, seed=5) != random_graph(50, 100, seed=6)

    def test_labels_from_alphabet(self):
        graph = random_graph(30, 40, seed=2)
        assert graph.distinct_labels() <= set(DEFAULT_ALPHABET)

    def test_no_self_loops(self):
        graph = random_graph(40, 120, seed=3)
        assert all(source != target for source, target in graph.edges())

    def test_too_many_edges_raises(self):
        with pytest.raises(GraphError):
            random_graph(3, 10, seed=0)
        with pytest.raises(GraphError):
            random_graph(1, 1, seed=0)

    def test_negative_sizes_raise(self):
        with pytest.raises(GraphError):
            random_graph(-1, 0)

    def test_label_skew_changes_distribution(self):
        skewed = random_graph(500, 600, seed=4, label_skew=2.0)
        from repro.graph.statistics import label_histogram

        histogram = label_histogram(skewed)
        assert histogram.get(DEFAULT_ALPHABET[0], 0) > histogram.get(DEFAULT_ALPHABET[-1], 0)


class TestPreferentialAttachment:
    def test_sizes_and_connectivity(self):
        graph = preferential_attachment_graph(300, edges_per_node=2, seed=9)
        assert graph.num_nodes() == 300
        assert graph.num_edges() >= 299  # at least a tree worth of edges
        assert len(weakly_connected_components(graph)) == 1

    def test_degree_skew(self):
        graph = preferential_attachment_graph(500, edges_per_node=2, seed=9)
        degrees = sorted((graph.degree(node) for node in graph.nodes()), reverse=True)
        assert degrees[0] > 10 * degrees[len(degrees) // 2]

    def test_deterministic(self):
        first = preferential_attachment_graph(100, seed=3)
        second = preferential_attachment_graph(100, seed=3)
        assert first == second

    def test_invalid_size_raises(self):
        with pytest.raises(GraphError):
            preferential_attachment_graph(0)


class TestCommunityGraph:
    def test_each_group_gets_a_label(self):
        graph = community_graph([10, 10, 10], seed=1)
        assert graph.num_nodes() == 30
        assert len(graph.distinct_labels()) == 3

    def test_weakly_connected(self):
        graph = community_graph([8, 8, 8], seed=2)
        assert len(weakly_connected_components(graph)) == 1

    def test_empty_communities_raise(self):
        with pytest.raises(GraphError):
            community_graph([], seed=1)


class TestLayeredDag:
    def test_is_dag_with_expected_size(self):
        graph = layered_dag(layers=5, width=6, seed=4)
        assert graph.num_nodes() == 30
        assert is_dag(graph)

    def test_every_non_final_layer_node_has_out_edge(self):
        graph = layered_dag(layers=4, width=5, seed=4)
        for node in range(15):  # nodes of the first three layers
            assert graph.out_degree(node) >= 1

    def test_invalid_dimensions_raise(self):
        with pytest.raises(GraphError):
            layered_dag(0, 5)
        with pytest.raises(GraphError):
            layered_dag(3, 0)


class TestSmallShapes:
    def test_path_graph(self):
        graph = path_graph(4)
        assert graph.num_nodes() == 5
        assert graph.num_edges() == 4
        assert is_dag(graph)

    def test_cycle_graph(self):
        graph = cycle_graph(4)
        assert graph.num_edges() == 4
        assert not is_dag(graph)
        with pytest.raises(GraphError):
            cycle_graph(0)

    def test_star_graph(self):
        graph = star_graph(6)
        assert graph.out_degree(0) == 6
        assert graph.label(0) == "HUB"

    def test_complete_bipartite(self):
        graph = complete_bipartite_graph(3, 4)
        assert graph.num_nodes() == 7
        assert graph.num_edges() == 12
        assert graph.out_degree(("l", 0)) == 4
