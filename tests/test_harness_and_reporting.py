"""Tests for the experiment harness registry and the text reporting layer."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.harness import (
    FULL,
    QUICK,
    available_experiments,
    profile,
    run_all,
    run_experiment,
)
from repro.experiments.records import ExperimentResult, PatternRow, ReachabilityRow
from repro.experiments.reporting import (
    REACHABILITY_COLUMNS,
    columns_for,
    format_many,
    format_result,
    format_table,
    print_result,
    summary_claims,
)


class TestHarnessRegistry:
    def test_all_paper_artifacts_registered(self):
        experiments = available_experiments()
        expected = {"table2"} | {f"fig8{letter}" for letter in "abcdefghijklmnop"}
        assert expected <= set(experiments)

    def test_profiles(self):
        assert profile("quick") is QUICK
        assert profile("full") is FULL
        with pytest.raises(ExperimentError):
            profile("gigantic")

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99z", scale="quick")

    def test_run_pattern_experiment_quick(self):
        result = run_experiment("fig8c", scale="quick", seed=1)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "fig8c"
        assert len(result.rows) == len(QUICK.pattern_alphas)
        assert all(isinstance(row, PatternRow) for row in result.rows)

    def test_run_reachability_experiment_quick(self):
        result = run_experiment("fig8m", scale="quick", seed=1)
        assert all(isinstance(row, ReachabilityRow) for row in result.rows)
        assert all(row.rbreach_false_positives == 0 for row in result.rows)

    def test_run_all_with_subset(self):
        results = run_all(scale="quick", seed=1, only=["fig8c", "fig8m"])
        assert [result.experiment_id for result in results] == ["fig8c", "fig8m"]


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 0.123456}, {"a": 22, "b": 3.0}]
        text = format_table(rows, ["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) == len(lines[0]) or True for line in lines)

    def test_format_table_empty(self):
        assert format_table([], ["a"]) == "(no rows)"

    def test_columns_for_picks_row_type(self):
        pattern_result = ExperimentResult("x", "t", rows=[PatternRow("d", "alpha", 0.1, 1, 0.1, "(4,8)")])
        reach_result = ExperimentResult(
            "y", "t", rows=[ReachabilityRow("d", "alpha", 0.1, 1, 0.1)]
        )
        assert "rbsim_time" in columns_for(pattern_result)
        assert columns_for(reach_result) == REACHABILITY_COLUMNS

    def test_format_result_contains_banner_and_rows(self):
        result = ExperimentResult(
            "fig8c", "Accuracy", rows=[PatternRow("toy", "alpha", 0.01, 2, 0.01, "(4,8)", rbsim_accuracy=0.9)]
        )
        text = format_result(result)
        assert "== fig8c: Accuracy ==" in text
        assert "toy" in text

    def test_format_result_with_notes(self):
        result = ExperimentResult("fig8c", "Accuracy", rows=[], notes="scaled surrogate")
        assert "note: scaled surrogate" in format_result(result)

    def test_print_result(self, capsys):
        result = ExperimentResult("fig8c", "Accuracy", rows=[])
        print_result(result)
        assert "fig8c" in capsys.readouterr().out

    def test_format_many_joins_results(self):
        results = [ExperimentResult("a", "first", rows=[]), ExperimentResult("b", "second", rows=[])]
        text = format_many(results)
        assert "== a: first ==" in text and "== b: second ==" in text

    def test_summary_claims(self):
        pattern_result = ExperimentResult(
            "fig8a",
            "time",
            rows=[
                PatternRow(
                    "toy", "alpha", 0.01, 2, 0.01, "(4,8)",
                    rbsim_speedup=3.0, rbsub_speedup=2.0, rbsim_accuracy=0.95,
                )
            ],
        )
        reach_result = ExperimentResult(
            "fig8k",
            "time",
            rows=[
                ReachabilityRow(
                    "toy", "alpha", 0.01, 10, 0.01,
                    rbreach_speedup_vs_bfs=10.0, rbreach_speedup_vs_bfsopt=2.0, rbreach_accuracy=0.99,
                )
            ],
        )
        claims = summary_claims([pattern_result, reach_result])
        assert len(claims) == 2
        assert "RBSim" in claims[0]
        assert "RBReach" in claims[1]
