"""Tests for the hierarchical landmark index (RBIndex)."""

import pytest

from repro.exceptions import IndexBuildError
from repro.graph.digraph import DiGraph
from repro.graph.generators import layered_dag, preferential_attachment_graph
from repro.graph.traversal import is_reachable
from repro.reachability.compression import compress
from repro.reachability.hierarchy import build_index


@pytest.fixture(scope="module")
def social_graph():
    return preferential_attachment_graph(800, edges_per_node=2, seed=5, back_edge_probability=0.05)


@pytest.fixture(scope="module")
def social_index(social_graph):
    return build_index(social_graph, alpha=0.1)


class TestBuildIndex:
    def test_size_budget_respected(self, social_graph, social_index):
        assert social_index.size() <= social_index.size_budget
        assert social_index.size_budget <= max(2, int(0.1 * social_graph.size()))

    def test_landmark_count_within_half_budget(self, social_index):
        assert social_index.num_landmarks() <= social_index.size_budget // 2 + 1

    def test_levels_structure(self, social_index):
        assert social_index.num_levels() >= 1
        # Level 1 holds every landmark; higher levels are subsets.
        leaves = set(social_index.levels[0])
        for level in social_index.levels[1:]:
            assert set(level) <= leaves
            assert len(level) <= len(leaves)

    def test_landmark_info_populated(self, social_index):
        for landmark, info in social_index.landmarks.items():
            assert info.node == landmark
            assert info.cover_size >= 1
            assert info.range_low <= info.rank <= info.range_high
            assert 1 <= info.level <= social_index.num_levels()

    def test_index_edges_assert_true_reachability(self, social_graph, social_index):
        dag = social_index.compressed.dag
        checked = 0
        for source, targets in social_index.forward_edges.items():
            for target in targets:
                assert is_reachable(dag, source, target)
                checked += 1
                if checked >= 50:
                    return

    def test_forward_and_backward_edge_views_consistent(self, social_index):
        for source, targets in social_index.forward_edges.items():
            for target in targets:
                assert source in social_index.backward_edges[target]

    def test_out_of_index_labels_are_landmarks(self, social_index):
        for labels in list(social_index.forward_labels.values())[:50]:
            assert all(social_index.is_landmark(landmark) for landmark in labels)
        for labels in list(social_index.backward_labels.values())[:50]:
            assert all(social_index.is_landmark(landmark) for landmark in labels)

    def test_invalid_alpha_rejected(self, social_graph):
        with pytest.raises(IndexBuildError):
            build_index(social_graph, alpha=0.0)
        with pytest.raises(IndexBuildError):
            build_index(social_graph, alpha=1.5)

    def test_accepts_precompressed_graph(self, social_graph):
        compressed = compress(social_graph)
        index = build_index(compressed, alpha=0.05, reference_size=social_graph.size())
        assert index.compressed is compressed
        assert index.size() <= index.size_budget

    def test_empty_graph(self):
        index = build_index(DiGraph(), alpha=0.5)
        assert index.num_landmarks() == 0
        assert index.size() == 0

    def test_smaller_alpha_gives_smaller_index(self, social_graph):
        small = build_index(social_graph, alpha=0.02)
        large = build_index(social_graph, alpha=0.2)
        assert small.size() <= large.size()
        assert small.num_landmarks() <= large.num_landmarks()

    def test_dag_input_without_cycles(self):
        dag = layered_dag(layers=4, width=5, seed=7)
        index = build_index(dag, alpha=0.2)
        assert index.num_landmarks() >= 1
        assert index.size() <= index.size_budget

    def test_reference_size_controls_budget(self, social_graph):
        small_ref = build_index(social_graph, alpha=0.1, reference_size=100)
        assert small_ref.size_budget == 10
        assert small_ref.size() <= 10
