"""End-to-end integration tests across the whole pipeline.

These tests exercise the public API exactly the way the examples and the
benchmark harness do: build a dataset, generate a workload, run the
resource-bounded algorithms against their exact baselines, and check the
paper's qualitative claims (bounded budgets, no false positives, accuracy
that improves with alpha, RBReach's true-positive guarantee).
"""

import pytest

from repro import (
    RBReach,
    RBSim,
    RBSub,
    example1_pattern,
    generate_pattern_workload,
    generate_reachability_workload,
    match_opt,
    pattern_accuracy,
    vf2_opt,
    youtube_like,
)
from repro.core.accuracy import boolean_accuracy, mean_accuracy
from repro.reachability import BFSOptReachability, BFSReachability, LandmarkVectorReachability
from tests.conftest import build_example1_graph


class TestExample1EndToEnd:
    """The paper's running example, end to end through every algorithm."""

    def test_all_algorithms_agree_on_example1(self):
        graph = build_example1_graph()
        query = example1_pattern()
        exact_sim = match_opt(query, graph, "Michael").answer
        exact_iso = vf2_opt(query, graph, "Michael").answer
        approx_sim = RBSim(graph, alpha=0.9).answer(query, "Michael").answer
        approx_iso = RBSub(graph, alpha=0.9).answer(query, "Michael").answer
        assert exact_sim == exact_iso == approx_sim == approx_iso == {"cl3", "cl4"}

    def test_reachability_between_groups(self):
        graph = build_example1_graph()
        matcher = RBReach.from_graph(graph, alpha=0.9)
        assert matcher.query("Michael", "cl3").reachable
        assert not matcher.query("cl3", "Michael").reachable


class TestPatternPipeline:
    @pytest.fixture(scope="class")
    def graph(self):
        return youtube_like(num_nodes=1500)

    def test_resource_bounded_pipeline(self, graph):
        workload = generate_pattern_workload(graph, shape=(4, 6), count=3, seed=1)
        sim = RBSim(graph, alpha=0.02)
        sub = RBSub(graph, alpha=0.02)
        sim_scores, sub_scores = [], []
        for query in workload:
            exact_sim = match_opt(query.pattern, graph, query.personalized_match)
            approx_sim = sim.answer(query.pattern, query.personalized_match)
            assert approx_sim.budget.within_size_bound
            assert approx_sim.answer <= exact_sim.answer
            sim_scores.append(pattern_accuracy(exact_sim.answer, approx_sim.answer))

            exact_sub = vf2_opt(query.pattern, graph, query.personalized_match)
            approx_sub = sub.answer(query.pattern, query.personalized_match)
            assert approx_sub.budget.within_size_bound
            assert approx_sub.answer <= exact_sub.answer
            sub_scores.append(pattern_accuracy(exact_sub.answer, approx_sub.answer))
        assert mean_accuracy(sim_scores).f_measure > 0.5
        assert mean_accuracy(sub_scores).f_measure > 0.5

    def test_accuracy_improves_with_alpha_on_average(self, graph):
        workload = generate_pattern_workload(graph, shape=(4, 6), count=3, seed=2)
        scores = {}
        for alpha in (0.001, 0.2):
            matcher = RBSim(graph, alpha=alpha)
            reports = []
            for query in workload:
                exact = match_opt(query.pattern, graph, query.personalized_match).answer
                approx = matcher.answer(query.pattern, query.personalized_match).answer
                reports.append(pattern_accuracy(exact, approx))
            scores[alpha] = mean_accuracy(reports).f_measure
        assert scores[0.2] >= scores[0.001]


class TestReachabilityPipeline:
    @pytest.fixture(scope="class")
    def graph(self):
        return youtube_like(num_nodes=1500)

    def test_rbreach_vs_baselines(self, graph):
        workload = generate_reachability_workload(graph, count=60, seed=3)
        rbreach = RBReach.from_graph(graph, alpha=0.05)
        bfs = BFSReachability(graph)
        bfsopt = BFSOptReachability(graph)
        landmark = LandmarkVectorReachability(graph, seed=3)

        rb_answers = rbreach.query_many(workload.pairs)
        assert all(bfs.query(*pair).reachable == workload.truth[pair] for pair in workload.pairs)
        assert all(bfsopt.query(*pair).reachable == workload.truth[pair] for pair in workload.pairs)

        # RBReach: bounded visits, no false positives, decent accuracy.
        false_positives = [
            pair for pair in workload.pairs if rb_answers[pair] and not workload.truth[pair]
        ]
        assert not false_positives
        rb_accuracy = boolean_accuracy(workload.truth, rb_answers).f_measure
        lm_accuracy = boolean_accuracy(workload.truth, landmark.query_many(workload.pairs)).f_measure
        assert rb_accuracy >= 0.8
        # The hierarchical index should not be worse than the flat LM baseline
        # by more than a small margin on its own surrogate.
        assert rb_accuracy >= lm_accuracy - 0.1

    def test_index_size_respects_alpha(self, graph):
        for alpha in (0.01, 0.05):
            matcher = RBReach.from_graph(graph, alpha=alpha)
            assert matcher.index.size() <= max(2, int(alpha * graph.size()))
