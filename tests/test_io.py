"""Tests for edge-list and JSON graph serialisation."""

import json

import pytest

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_graph
from repro.graph.io import (
    from_json_dict,
    read_edge_list,
    read_json,
    to_json_dict,
    write_edge_list,
    write_json,
)


@pytest.fixture
def sample_graph() -> DiGraph:
    return random_graph(25, 60, seed=11)


class TestEdgeList:
    def test_round_trip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        write_edge_list(sample_graph, path)
        loaded = read_edge_list(path)
        assert loaded == sample_graph

    def test_missing_label_file_uses_default(self, sample_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        write_edge_list(sample_graph, path)
        (tmp_path / "graph.tsv.labels").unlink()
        loaded = read_edge_list(path, default_label="?")
        assert loaded.num_edges() == sample_graph.num_edges()
        assert all(loaded.label(node) == "?" for node in loaded.nodes())

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("# a comment\n\n1\t2\n2\t3\n", encoding="utf-8")
        loaded = read_edge_list(path)
        assert loaded.num_nodes() == 3
        assert loaded.num_edges() == 2

    def test_malformed_edge_line_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1 2 3\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_string_node_ids_preserved(self, tmp_path):
        graph = DiGraph.from_edges([("alice", "bob")], labels={"alice": "P", "bob": "P"})
        path = tmp_path / "people.tsv"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded.has_edge("alice", "bob")
        assert loaded.label("alice") == "P"


class TestJson:
    def test_round_trip_via_dict(self, sample_graph):
        assert from_json_dict(to_json_dict(sample_graph)) == sample_graph

    def test_round_trip_via_file(self, sample_graph, tmp_path):
        path = tmp_path / "graph.json"
        write_json(sample_graph, path)
        assert read_json(path) == sample_graph
        # And the payload is genuine JSON.
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["format"] == "repro-digraph"

    def test_wrong_format_marker_raises(self):
        with pytest.raises(GraphError):
            from_json_dict({"format": "something-else"})

    def test_edge_with_unknown_node_raises(self):
        payload = {
            "format": "repro-digraph",
            "nodes": [{"id": "1", "label": "A"}],
            "edges": [{"source": "1", "target": "2"}],
        }
        with pytest.raises(GraphError):
            from_json_dict(payload)
