"""Differential suite for the bitset traversal kernels and their dispatch.

The contract under test: every answer the vectorised kernel tier
(`repro.graph.kernels`) produces is **bit-identical** to the pure-python
oracle — the generic registry fallback running the same operation on a
plain :class:`~repro.graph.digraph.DiGraph`.  That parity is pinned

* across the graph families of ``repro.graph.generators``,
* across batch sizes that cross the 64-source word boundary and the
  tile boundary of the multi-source sweep,
* with and without absorbing (``stop``) frontiers, in both directions,
* across every executor (serial/thread/process/daemon), and
* across sharded engines with k ∈ {1, 2, 4}.

Plus: the hybrid scalar/vector phases of ``csr_reach_mask`` are
property-tested against each other on absorbing frontiers (hypothesis),
dispatch bookkeeping (``kernel.batch_size`` / ``kernel.fallbacks``) is
asserted, and the four deprecated per-source entry points must warn while
still delegating correctly.
"""

from __future__ import annotations

import random
import warnings

import pytest

np = pytest.importorskip("numpy")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.exceptions import GraphError
from repro.graph import CSRGraph, DiGraph, reach_batch, traverse
from repro.graph.generators import (
    community_graph,
    complete_bipartite_graph,
    cycle_graph,
    layered_dag,
    path_graph,
    preferential_attachment_graph,
    random_graph,
    star_graph,
)
from repro.graph.kernels import KERNELS, TILE_SOURCES, ReachBatch, csr_reach_mask

ALPHA = 0.05

FAMILIES = {
    "random": lambda: random_graph(220, 900, seed=3),
    "preferential": lambda: preferential_attachment_graph(200, 3, seed=5),
    "community": lambda: community_graph([60, 60, 60], seed=7),
    "layered-dag": lambda: layered_dag(8, 22, seed=9),
    "path": lambda: path_graph(120),
    "cycle": lambda: cycle_graph(90),
    "star": lambda: star_graph(150),
    "bipartite": lambda: complete_bipartite_graph(12, 18),
}


@pytest.fixture(scope="module", params=sorted(FAMILIES))
def family(request):
    digraph = FAMILIES[request.param]()
    return request.param, digraph, CSRGraph.from_digraph(digraph)


def _sample_sources(digraph, count, seed=11):
    rng = random.Random(seed)
    nodes = list(digraph.nodes())
    return [rng.choice(nodes) for _ in range(count)]


def _stop_set(digraph, fraction=0.12, seed=13):
    rng = random.Random(seed)
    nodes = list(digraph.nodes())
    return set(rng.sample(nodes, max(1, int(fraction * len(nodes)))))


class TestReachBatchParity:
    """Bitset sweep vs pure-python oracle, per family."""

    @pytest.mark.parametrize("forward", (True, False))
    @pytest.mark.parametrize("absorbing", (False, True))
    def test_bit_parity_with_oracle(self, family, forward, absorbing):
        name, digraph, csr = family
        sources = _sample_sources(digraph, 70)  # crosses the 64-source word
        stop = _stop_set(digraph) if absorbing else None
        vectorised = reach_batch(csr, sources, forward=forward, stop=stop)
        oracle = reach_batch(digraph, sources, forward=forward, stop=stop)
        assert isinstance(vectorised, ReachBatch)
        assert vectorised.num_sources == oracle.num_sources == len(sources)
        for j in range(len(sources)):
            assert vectorised.reached(j) == oracle.reached(j), (name, j)
        assert vectorised.counts() == oracle.counts()
        assert vectorised.any_rows() == oracle.any_rows()
        assert vectorised.total_bits() == oracle.total_bits()

    @pytest.mark.parametrize("count", (1, 63, 64, 65, 130))
    def test_word_boundaries(self, count):
        digraph = FAMILIES["random"]()
        csr = CSRGraph.from_digraph(digraph)
        sources = _sample_sources(digraph, count, seed=count)
        vectorised = reach_batch(csr, sources)
        oracle = reach_batch(digraph, sources)
        for j in range(count):
            assert vectorised.reached(j) == oracle.reached(j), (count, j)

    def test_tile_boundary(self, monkeypatch):
        # Shrink the tile so a modest batch must span several sweeps; the
        # stitched word blocks must still agree with the oracle bit for bit.
        import repro.graph.kernels as kernels

        monkeypatch.setattr(kernels, "TILE_SOURCES", 64)
        digraph = FAMILIES["preferential"]()
        csr = CSRGraph.from_digraph(digraph)
        sources = _sample_sources(digraph, 150)
        stop = _stop_set(digraph)
        vectorised = reach_batch(csr, sources, stop=stop)
        oracle = reach_batch(digraph, sources, stop=stop)
        for j in range(len(sources)):
            assert vectorised.reached(j) == oracle.reached(j), j

    def test_duplicate_sources_share_a_row(self):
        digraph = FAMILIES["random"]()
        csr = CSRGraph.from_digraph(digraph)
        node = next(iter(digraph.nodes()))
        sources = [node] * 3 + _sample_sources(digraph, 5)
        vectorised = reach_batch(csr, sources)
        oracle = reach_batch(digraph, sources)
        for j in range(len(sources)):
            assert vectorised.reached(j) == oracle.reached(j)
        assert vectorised.reached(0) == vectorised.reached(1) == vectorised.reached(2)

    def test_matches_per_source_reach_mask(self, family):
        """The batched sweep IS reach_mask, one column per source."""
        name, digraph, csr = family
        sources = _sample_sources(digraph, 40)
        stop = _stop_set(digraph)
        stop_mask = np.zeros(csr.num_nodes(), dtype=bool)
        for node in stop:
            stop_mask[csr.index_of(node)] = True
        for forward in (True, False):
            batch = reach_batch(csr, sources, forward=forward, stop=stop_mask)
            for j, source in enumerate(sources):
                mask = csr_reach_mask(
                    csr, csr.index_of(source), forward=forward, stop_mask=stop_mask
                )
                assert np.array_equal(batch.mask(j), mask), (name, forward, j)

    def test_sources_absorbed_by_their_own_stop_still_expand(self):
        # The landmark label sweep runs FROM landmarks with a stop mask that
        # covers all landmarks; level 0 must expand anyway.
        digraph = DiGraph()
        for node in "abcde":
            digraph.add_node(node)
        for edge in (("a", "b"), ("b", "c"), ("c", "d"), ("b", "e")):
            digraph.add_edge(*edge)
        csr = CSRGraph.from_digraph(digraph)
        stop = {"a", "c"}
        vectorised = reach_batch(csr, ["a", "c"], stop=stop)
        oracle = reach_batch(digraph, ["a", "c"], stop=stop)
        assert vectorised.reached(0) == oracle.reached(0) == {"a", "b", "c", "e"}
        assert vectorised.reached(1) == oracle.reached(1) == {"c", "d"}

    def test_empty_batch(self, family):
        _, digraph, csr = family
        batch = reach_batch(csr, [])
        assert batch.num_sources == 0
        assert batch.counts() == []
        assert batch.any_rows() == []


class TestDispatch:
    """The capability registry: exact-or-fallback semantics + telemetry."""

    def test_traverse_ops_agree_across_backends(self, family):
        name, digraph, csr = family
        nodes = list(digraph.nodes())
        source, target = nodes[0], nodes[-1]
        for op, args, kwargs in (
            ("bfs_levels", (source,), {"max_hops": 3, "direction": "both"}),
            ("is_reachable", (source, target), {}),
            ("bidirectional_reachable", (source, target), {}),
            ("reachable_set", (source,), {"forward": True}),
            ("reachable_set", (source,), {"forward": False}),
            ("connected_component", (source,), {}),
            ("weak_components", (), {}),
        ):
            generic = traverse(digraph, op, *args, **kwargs)
            exact = traverse(csr, op, *args, **kwargs)
            if op == "weak_components":
                generic = sorted(map(sorted, generic))
                exact = sorted(map(sorted, exact))
            assert generic == exact, (name, op)

    def test_unknown_operation_raises(self):
        with pytest.raises(GraphError, match="no kernel registered"):
            traverse(DiGraph(), "no_such_op")

    def test_index_space_op_has_no_generic_fallback(self):
        digraph = DiGraph()
        digraph.add_node("a")
        with pytest.raises(GraphError, match="reach_mask"):
            traverse(digraph, "reach_mask", 0)

    def test_exact_kernel_registered_for_csr(self):
        for op in ("reach_batch", "bfs_levels", "is_reachable", "reachable_set"):
            assert KERNELS.has_exact(op, CSRGraph)
            assert not KERNELS.has_exact(op, DiGraph)

    def test_fallback_counter_and_batch_histogram(self):
        obs.set_enabled(True)
        obs.REGISTRY.reset()
        try:
            digraph = FAMILIES["path"]()
            csr = CSRGraph.from_digraph(digraph)
            sources = _sample_sources(digraph, 9)
            reach_batch(csr, sources)  # exact: no fallback
            assert obs.counter("kernel.fallbacks").value == 0
            reach_batch(digraph, sources)  # generic: one fallback
            assert obs.counter("kernel.fallbacks").value == 1
            histogram = obs.histogram("kernel.batch_size", scheme="count")
            assert histogram.count == 2
            assert histogram.sum == pytest.approx(18.0)
        finally:
            obs.REGISTRY.reset()

    def test_registry_mro_walk_prefers_nearest_class(self):
        class Specialised(DiGraph):
            pass

        registry_entry = KERNELS.resolve("reach_batch", Specialised)
        assert registry_entry[0] is not None and not registry_entry[1]  # generic

        marker = object()
        try:
            KERNELS.register("reach_batch", Specialised)(lambda graph: marker)
            assert KERNELS.has_exact("reach_batch", Specialised)
            assert traverse(Specialised(), "reach_batch") is marker
        finally:
            KERNELS._kernels.pop(("reach_batch", Specialised), None)
            KERNELS._cache.clear()


class TestHybridAbsorption:
    """Satellite: scalar-phase and vectorised-phase reach_mask must agree
    on absorbing frontiers — property-tested in both directions."""

    @staticmethod
    def _graph_from(edges, num_nodes):
        digraph = DiGraph()
        for node in range(num_nodes):
            digraph.add_node(node)
        for source, target in edges:
            digraph.add_edge(source, target)
        return digraph

    @given(
        num_nodes=st.integers(min_value=2, max_value=28),
        edge_seed=st.integers(min_value=0, max_value=10_000),
        density=st.floats(min_value=0.02, max_value=0.35),
        stop_seed=st.integers(min_value=0, max_value=10_000),
        start=st.integers(min_value=0, max_value=10_000),
        forward=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_scalar_and_vector_phases_agree(
        self, num_nodes, edge_seed, density, stop_seed, start, forward
    ):
        rng = random.Random(edge_seed)
        edges = [
            (i, j)
            for i in range(num_nodes)
            for j in range(num_nodes)
            if i != j and rng.random() < density
        ]
        digraph = self._graph_from(edges, num_nodes)
        csr = CSRGraph.from_digraph(digraph)
        stop_rng = random.Random(stop_seed)
        stop_mask = np.zeros(num_nodes, dtype=bool)
        for node in range(num_nodes):
            if stop_rng.random() < 0.3:
                stop_mask[node] = True
        start_index = csr.index_of(start % num_nodes)

        pure_vector = csr_reach_mask(
            csr, start_index, forward=forward, stop_mask=stop_mask, scalar_threshold=0
        )
        pure_scalar = csr_reach_mask(
            csr, start_index, forward=forward, stop_mask=stop_mask, scalar_threshold=10**9
        )
        hybrid = csr_reach_mask(csr, start_index, forward=forward, stop_mask=stop_mask)
        assert np.array_equal(pure_vector, pure_scalar)
        assert np.array_equal(pure_vector, hybrid)

        # ... and both phases agree with the bitset sweep and the oracle.
        batch = reach_batch(csr, [start % num_nodes], forward=forward, stop=stop_mask)
        assert np.array_equal(batch.mask(0), pure_vector)
        oracle = reach_batch(digraph, [start % num_nodes], forward=forward, stop=stop_mask)
        assert batch.reached(0) == oracle.reached(0)


class TestExecutorParity:
    """Answers must not depend on the executor carrying the batch."""

    @pytest.fixture(scope="class")
    def workload(self):
        from repro.engine import QueryEngine
        from repro.engine.queries import ReachQuery

        digraph = random_graph(240, 1000, seed=21)
        rng = random.Random(23)
        nodes = list(digraph.nodes())
        queries = [
            ReachQuery(rng.choice(nodes), rng.choice(nodes)) for _ in range(60)
        ]
        with QueryEngine(digraph, cache_size=0) as engine:
            baseline = engine.run_batch(queries, ALPHA)
        return digraph, queries, [answer.reachable for answer in baseline.answers]

    @pytest.mark.parametrize("executor", ("serial", "thread", "process", "daemon"))
    def test_every_executor_matches_serial(self, workload, executor):
        from repro.engine import QueryEngine

        digraph, queries, expected = workload
        with QueryEngine(digraph, cache_size=0) as engine:
            report = engine.run_batch(queries, ALPHA, executor=executor, workers=2)
        assert [answer.reachable for answer in report.answers] == expected


class TestShardedParity:
    """k ∈ {1, 2, 4} sharded answers match the single-graph engine."""

    @pytest.fixture(scope="class")
    def workload(self):
        from repro.engine import QueryEngine
        from repro.engine.queries import ReachQuery

        digraph = community_graph([70, 70, 60], seed=29)
        rng = random.Random(31)
        nodes = list(digraph.nodes())
        queries = [
            ReachQuery(rng.choice(nodes), rng.choice(nodes)) for _ in range(50)
        ]
        with QueryEngine(digraph.copy(), cache_size=0) as engine:
            baseline = engine.run_batch(queries, ALPHA)
        return digraph, queries, [answer.reachable for answer in baseline.answers]

    @pytest.mark.parametrize("num_shards", (1, 2, 4))
    def test_sharded_matches_single_graph(self, workload, num_shards):
        from repro.shard import ShardedEngine

        digraph, queries, expected = workload
        with ShardedEngine(digraph.copy(), num_shards=num_shards, seed=7) as engine:
            report = engine.run_batch(queries, ALPHA)
        assert [answer.reachable for answer in report.answers] == expected


class TestDeprecatedWrappers:
    """The four per-source entry points: warn, but delegate bit-identically."""

    @pytest.fixture(scope="class")
    def graphs(self):
        digraph = random_graph(150, 600, seed=37)
        return digraph, CSRGraph.from_digraph(digraph)

    def _warns_and_returns(self, call):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = call()
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        return result

    def test_reach_mask_warns_and_delegates(self, graphs):
        _, csr = graphs
        deprecated = self._warns_and_returns(lambda: csr.reach_mask(0))
        assert np.array_equal(deprecated, csr_reach_mask(csr, 0))

    def test_fast_reachable_set_warns_and_delegates(self, graphs):
        digraph, csr = graphs
        node = next(iter(digraph.nodes()))
        deprecated = self._warns_and_returns(lambda: csr.fast_reachable_set(node))
        assert deprecated == traverse(csr, "reachable_set", node, forward=True)

    def test_fast_is_reachable_warns_and_delegates(self, graphs):
        digraph, csr = graphs
        nodes = list(digraph.nodes())
        deprecated = self._warns_and_returns(
            lambda: csr.fast_is_reachable(nodes[0], nodes[-1])
        )
        assert deprecated == traverse(csr, "is_reachable", nodes[0], nodes[-1])

    def test_bfs_distances_warns_and_delegates(self, graphs):
        digraph, csr = graphs
        node = next(iter(digraph.nodes()))
        deprecated = self._warns_and_returns(lambda: csr.bfs_distances(node, max_hops=4))
        assert deprecated == traverse(csr, "bfs_levels", node, max_hops=4, direction="both")

    def test_traversal_facade_is_warning_free(self, graphs):
        # The public traversal functions route around the deprecated
        # methods; they must never trip the warnings themselves.
        from repro.graph import traversal as tr

        digraph, csr = graphs
        nodes = list(digraph.nodes())
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            tr.bfs_levels(csr, nodes[0], max_hops=3)
            tr.is_reachable(csr, nodes[0], nodes[-1])
            tr.descendants(csr, nodes[0])
            tr.ancestors(csr, nodes[0])
            tr.connected_component(csr, nodes[0])
            tr.weakly_connected_components(csr)
