"""Tests for greedy landmark selection and landmark graphs."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import layered_dag, path_graph
from repro.graph.topology import TopologicalRankIndex
from repro.graph.traversal import is_reachable
from repro.reachability.landmarks import (
    build_landmark_graph,
    first_landmarks_hit,
    greedy_landmarks,
    landmark_reachability,
    selection_scores,
)


@pytest.fixture
def dag():
    return layered_dag(layers=5, width=4, seed=2)


class TestGreedySelection:
    def test_requested_count(self, dag):
        ranks = TopologicalRankIndex(dag)
        landmarks = greedy_landmarks(dag, ranks, count=6, exclusion_radius=2)
        assert len(landmarks) == 6
        assert len(set(landmarks)) == 6

    def test_zero_count(self, dag):
        ranks = TopologicalRankIndex(dag)
        assert greedy_landmarks(dag, ranks, count=0, exclusion_radius=2) == []

    def test_count_larger_than_graph(self, dag):
        ranks = TopologicalRankIndex(dag)
        landmarks = greedy_landmarks(dag, ranks, count=10_000, exclusion_radius=1)
        assert len(landmarks) <= dag.num_nodes()

    def test_exclusion_radius_spreads_selection(self):
        # A star: with a large exclusion radius, after picking the hub most
        # leaves are excluded, so fewer landmarks are selected.
        graph = DiGraph()
        graph.add_node("hub", "H")
        for leaf in range(10):
            graph.add_node(leaf, "L")
            graph.add_edge("hub", leaf)
        ranks = TopologicalRankIndex(graph)
        spread = greedy_landmarks(graph, ranks, count=11, exclusion_radius=10)
        assert len(spread) < 11

    def test_weights_bias_selection(self, dag):
        ranks = TopologicalRankIndex(dag)
        target = sorted(dag.nodes())[0]
        weights = {node: 1.0 for node in dag.nodes()}
        weights[target] = 10_000.0
        landmarks = greedy_landmarks(dag, ranks, count=3, exclusion_radius=1, weights=weights)
        assert target in landmarks

    def test_selection_scores_nonnegative(self, dag):
        ranks = TopologicalRankIndex(dag)
        scores = selection_scores(dag, ranks)
        assert all(score >= 0 for score in scores.values())


class TestLandmarkLabels:
    def test_first_landmarks_hit_stops_at_landmarks(self):
        graph = path_graph(5)  # 0 -> 1 -> 2 -> 3 -> 4 -> 5
        landmarks = {2, 4}
        forward = first_landmarks_hit(graph, 0, landmarks, forward=True)
        # The BFS stops at landmark 2 and never reaches 4.
        assert forward == {2}

    def test_backward_direction(self):
        graph = path_graph(5)
        backward = first_landmarks_hit(graph, 5, {3}, forward=False)
        assert backward == {3}

    def test_landmark_start_returns_empty(self):
        graph = path_graph(3)
        assert first_landmarks_hit(graph, 1, {1, 2}, forward=True) == set()

    def test_max_labels_cap(self):
        graph = DiGraph()
        graph.add_node("s", "S")
        for leaf in range(6):
            graph.add_node(leaf, "L")
            graph.add_edge("s", leaf)
        labels = first_landmarks_hit(graph, "s", set(range(6)), forward=True, max_labels=3)
        assert len(labels) == 3


class TestLandmarkGraph:
    def test_landmark_reachability_matches_bfs(self, dag):
        landmarks = sorted(dag.nodes())[:8]
        reach = landmark_reachability(dag, landmarks)
        for source in landmarks:
            for target in landmarks:
                if source == target:
                    continue
                assert (target in reach[source]) == is_reachable(dag, source, target)

    def test_build_landmark_graph_edges(self, dag):
        landmarks = sorted(dag.nodes())[:6]
        landmark_graph = build_landmark_graph(dag, landmarks)
        assert set(landmark_graph.nodes()) == set(landmarks)
        for source, target in landmark_graph.edges():
            assert is_reachable(dag, source, target)
