"""Tests for r-hop neighbourhoods, balls and the Sl summaries."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import star_graph
from repro.graph.neighborhood import (
    NeighborhoodIndex,
    ball,
    ball_size,
    max_label_fanout,
    nodes_within_hops,
    summarize_node,
    theoretical_alpha_bound,
)


class TestNodesWithinHops:
    def test_radius_zero_is_just_the_center(self, diamond_dag):
        assert nodes_within_hops(diamond_dag, "a", 0) == {"a"}

    def test_radius_counts_both_directions(self, diamond_dag):
        # "d" is 1 hop from "b" (edge b->d) and 1 hop from "e" (edge d->e).
        assert nodes_within_hops(diamond_dag, "d", 1) == {"b", "c", "d", "e"}

    def test_radius_covers_whole_graph(self, diamond_dag):
        assert nodes_within_hops(diamond_dag, "a", 3) == {"a", "b", "c", "d", "e"}

    def test_negative_radius_raises(self, diamond_dag):
        with pytest.raises(ValueError):
            nodes_within_hops(diamond_dag, "a", -1)


class TestBall:
    def test_ball_is_induced(self, diamond_dag):
        the_ball = ball(diamond_dag, "a", 1)
        assert set(the_ball.nodes()) == {"a", "b", "c"}
        assert the_ball.has_edge("a", "b") and the_ball.has_edge("a", "c")
        assert the_ball.num_edges() == 2

    def test_ball_size_matches_ball(self, diamond_dag):
        assert ball_size(diamond_dag, "a", 2) == ball(diamond_dag, "a", 2).size()

    def test_example1_ball_radius_two_contains_cycling_lovers(self, example1_graph):
        the_ball = ball(example1_graph, "Michael", 2)
        assert "cl3" in the_ball and "cl4" in the_ball


class TestSummaries:
    def test_summarize_node_counts_labels_by_direction(self, example1_graph):
        summary = summarize_node(example1_graph, "Michael")
        assert summary.degree == 6
        assert summary.child_count("HG") == 3
        assert summary.child_count("CC") == 3
        assert summary.parent_count("HG") == 0
        assert summary.count("CC") == 3

    def test_summary_of_leaf(self, example1_graph):
        summary = summarize_node(example1_graph, "cl4")
        assert summary.degree == 2
        assert summary.parent_count("CC") == 1
        assert summary.parent_count("HG") == 1
        assert summary.child_count("CC") == 0

    def test_index_caches_and_precomputes(self, example1_graph):
        index = NeighborhoodIndex(example1_graph)
        assert len(index) == 0
        first = index.summary("Michael")
        assert len(index) == 1
        assert index.summary("Michael") is first
        index.precompute()
        assert len(index) == example1_graph.num_nodes()

    def test_index_predicates(self, example1_graph):
        index = NeighborhoodIndex(example1_graph)
        assert index.has_child_label("Michael", "HG")
        assert not index.has_parent_label("Michael", "HG")
        assert index.has_parent_label("cl3", "CC")
        assert index.degree("cc2") == 1


class TestFanoutAndBound:
    def test_max_label_fanout_of_star(self):
        graph = star_graph(7)
        assert max_label_fanout(graph, 0, 1) == 7

    def test_max_label_fanout_example1(self, example1_graph):
        # Michael has 3 HG children and 3 CC children within the 2-ball.
        assert max_label_fanout(example1_graph, "Michael", 2) == 3

    def test_theoretical_alpha_bound_in_unit_interval(self, example1_graph):
        bound = theoretical_alpha_bound(example1_graph, "Michael", 2, num_labels=4)
        assert 0 < bound <= 1

    def test_theoretical_alpha_bound_small_graph_is_one(self):
        graph = DiGraph()
        graph.add_node(0, "A")
        assert theoretical_alpha_bound(graph, 0, 1, num_labels=1, fanout=1) == 1.0
