"""The observability layer (``repro.obs``): exactness, mergeability, cost.

What is pinned down here:

* histogram percentiles track numpy's exact quantiles on well-populated
  seeded samples (to within one geometric bucket's width), and clamp to
  the observed min/max at the extremes;
* snapshot merging is associative and commutative (hypothesis, integer
  observations so float summation cannot blur the comparison) — the
  property that makes worker-delta folding order-independent;
* disabled mode (``REPRO_METRICS=0`` / ``set_enabled(False)``) hands out
  shared no-op singletons, registers nothing and allocates nothing on the
  hot path;
* instrumentation never changes answers: serial and daemon executors are
  bit-identical with metrics on and off;
* every name the live stack registers is in ``repro.obs.CATALOG``, and the
  tables in ``docs/OBSERVABILITY.md`` match the catalogue exactly — the
  docs cannot drift from the code;
* daemon workers drain their registries into the parent exactly once
  (chunk counts merge without double counting, even under ``fork``), and
  a crash-injected restart shows up in the global ``daemon.restarts``.
"""

from __future__ import annotations

import os
import re
import signal
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.engine import QueryEngine
from repro.engine.daemons import DaemonPool
from repro.engine.queries import ReachQuery
from repro.graph.generators import random_graph
from repro.obs.metrics import SCHEMES, Histogram, MetricsRegistry, merge_snapshots

ROOT = Path(__file__).resolve().parent.parent
ALPHA = 0.1


@pytest.fixture(autouse=True)
def clean_registry():
    """Each test sees an enabled, empty global registry and restores state."""
    was_enabled = obs.enabled()
    obs.set_enabled(True)
    obs.REGISTRY.reset()
    yield
    obs.REGISTRY.reset()
    obs.set_enabled(was_enabled)


def _echo_chunk(state, task):
    return [state["factor"] * item for item in task]


def _signatures(answers):
    return [(a.reachable, a.visited, a.met_at, a.exhausted) for a in answers]


# --------------------------------------------------------------------------- #
# Histogram percentiles vs numpy
# --------------------------------------------------------------------------- #
class TestHistogramPercentiles:
    # Geometric buckets at ratio r are exact to within one bucket, and the
    # interpolated rank can straddle an adjacent bucket: a factor of r^2
    # (1.25^2 ≈ 1.6 on the latency scheme) bounds the estimate both ways.
    TOLERANCE = 1.25**2

    def test_tracks_numpy_quantiles_on_seeded_lognormal(self):
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-6.0, sigma=1.2, size=20_000)  # ~ms latencies
        histogram = Histogram("t")
        for value in samples:
            histogram.observe(float(value))
        for q in (0.10, 0.50, 0.90, 0.99, 0.999):
            exact = float(np.quantile(samples, q))
            estimate = histogram.percentile(q)
            assert exact / self.TOLERANCE <= estimate <= exact * self.TOLERANCE, (
                f"q={q}: histogram {estimate:.6f} vs numpy {exact:.6f}"
            )

    def test_extremes_clamp_to_observed_min_max(self):
        rng = np.random.default_rng(11)
        samples = rng.lognormal(mean=-4.0, sigma=1.0, size=500)
        histogram = Histogram("t")
        for value in samples:
            histogram.observe(float(value))
        assert histogram.percentile(0.0) == pytest.approx(float(samples.min()))
        assert histogram.percentile(1.0) == pytest.approx(float(samples.max()))

    def test_overflow_and_count_scheme(self):
        histogram = Histogram("t", scheme="count")
        for value in (0.5, 3.0, 2_000_000.0):  # below first bound / mid / overflow
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.counts[-1] == 1  # the overflow bucket
        assert histogram.percentile(1.0) == pytest.approx(2_000_000.0)

    def test_rejects_unknown_scheme_and_bad_quantile(self):
        with pytest.raises(ValueError):
            Histogram("t", scheme="nope")
        with pytest.raises(ValueError):
            Histogram("t").percentile(1.5)


# --------------------------------------------------------------------------- #
# Snapshot merge algebra (hypothesis)
# --------------------------------------------------------------------------- #
def _build_snapshot(events):
    """A registry snapshot from ``(slot, value)`` integer events."""
    registry = MetricsRegistry()
    for slot, value in events:
        registry.counter(f"c.{slot}").inc(value)
        registry.gauge(f"g.{slot}").set_max(float(value))
        registry.histogram(f"h.{slot}", scheme="count").observe(float(value))
    return registry.snapshot()


_events = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 1_000_000)),
    max_size=15,
)


class TestSnapshotMerge:
    @settings(suppress_health_check=[HealthCheck.function_scoped_fixture], deadline=None)
    @given(left=_events, right=_events)
    def test_commutative(self, left, right):
        a, b = _build_snapshot(left), _build_snapshot(right)
        assert merge_snapshots(a, b) == merge_snapshots(b, a)

    @settings(suppress_health_check=[HealthCheck.function_scoped_fixture], deadline=None)
    @given(first=_events, second=_events, third=_events)
    def test_associative(self, first, second, third):
        a, b, c = map(_build_snapshot, (first, second, third))
        assert merge_snapshots(merge_snapshots(a, b), c) == merge_snapshots(
            a, merge_snapshots(b, c)
        )

    def test_merge_semantics(self):
        a = _build_snapshot([("a", 3), ("a", 4)])
        b = _build_snapshot([("a", 10)])
        merged = merge_snapshots(a, b)
        assert merged["counters"]["c.a"] == 17  # counters add
        assert merged["gauges"]["g.a"] == 10.0  # gauges keep the peak
        assert merged["histograms"]["h.a"]["count"] == 3  # histograms union
        assert merged["histograms"]["h.a"]["min"] == 3.0
        assert merged["histograms"]["h.a"]["max"] == 10.0


# --------------------------------------------------------------------------- #
# Disabled mode
# --------------------------------------------------------------------------- #
class TestDisabledMode:
    def test_accessors_share_noop_singletons_and_register_nothing(self):
        obs.set_enabled(False)
        assert obs.counter("one") is obs.counter("two")
        assert obs.gauge("one") is obs.gauge("two")
        assert obs.histogram("one") is obs.histogram("two")
        obs.counter("one").inc(5)
        obs.histogram("one").observe(1.0)
        assert obs.REGISTRY.names() == []
        assert obs.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_hot_path_allocates_nothing_when_disabled(self):
        import tracemalloc

        obs.set_enabled(False)
        counter = obs.counter("noop")
        histogram = obs.histogram("noop")

        def hot_loop():
            for _ in range(1_000):
                counter.inc()
                histogram.observe(0.001)
                with obs.span("noop", attr=1):
                    pass

        hot_loop()  # warm any lazy interpreter state before measuring
        tracemalloc.start()
        try:
            before = tracemalloc.get_traced_memory()[0]
            hot_loop()
            grown = tracemalloc.get_traced_memory()[0] - before
        finally:
            tracemalloc.stop()
        assert grown < 512, f"disabled-mode hot path allocated {grown} bytes"


# --------------------------------------------------------------------------- #
# Instrumentation parity
# --------------------------------------------------------------------------- #
class TestInstrumentationParity:
    def test_answers_identical_with_metrics_on_and_off(self):
        graph = random_graph(num_nodes=220, num_edges=900, seed=13)
        nodes = list(graph.nodes())
        queries = [ReachQuery(nodes[i], nodes[-1 - i]) for i in range(18)]
        with QueryEngine(graph, cache_size=0) as engine:
            obs.set_enabled(True)
            on_serial = _signatures(engine.answer_batch(queries, ALPHA))
            on_daemon = _signatures(
                engine.answer_batch(queries, ALPHA, executor="daemon", workers=2)
            )
            obs.set_enabled(False)
            off_serial = _signatures(engine.answer_batch(queries, ALPHA))
            off_daemon = _signatures(
                engine.answer_batch(queries, ALPHA, executor="daemon", workers=2)
            )
        assert on_serial == off_serial == on_daemon == off_daemon


# --------------------------------------------------------------------------- #
# Catalogue <-> registry <-> docs
# --------------------------------------------------------------------------- #
_DOC_ROW = re.compile(r"^\|\s*`([a-z0-9._]+)`\s*\|\s*(counter|gauge|histogram|span)\b", re.M)


class TestCatalog:
    def test_live_registry_names_are_all_catalogued(self):
        """Exercise the stack end-to-end; every registered name must be known."""
        from repro.service import GraphService, ReachRequest, ServiceConfig
        from repro.updates.delta import GraphDelta

        graph = random_graph(num_nodes=200, num_edges=800, seed=3)
        nodes = list(graph.nodes())
        requests = [ReachRequest(nodes[i], nodes[-1 - i]) for i in range(12)]
        with GraphService(graph, ServiceConfig(executor="serial", alpha=ALPHA)) as service:
            service.run_batch(requests)
            service.run_batch(requests)  # cache-hit path
            delta = GraphDelta()
            delta.add_edge(nodes[0], nodes[1])
            service.update(delta)
        registered = set(obs.REGISTRY.names())
        unknown = registered - set(obs.CATALOG)
        assert not unknown, f"metrics registered but missing from CATALOG: {sorted(unknown)}"
        assert registered, "the exercised stack registered no metrics at all"

    def test_docs_table_matches_catalog_exactly(self):
        text = (ROOT / "docs" / "OBSERVABILITY.md").read_text(encoding="utf-8")
        rows = _DOC_ROW.findall(text)
        documented = {name: kind for name, kind in rows if kind != "span"}
        documented_spans = {name for name, kind in rows if kind == "span"}
        expected = {name: kind for name, (kind, _, _) in obs.CATALOG.items()}
        assert documented == expected, (
            "docs/OBSERVABILITY.md metric table drifted from repro.obs.CATALOG"
        )
        assert documented_spans == set(obs.SPANS), (
            "docs/OBSERVABILITY.md span table drifted from repro.obs.SPANS"
        )

    def test_catalog_histogram_schemes_are_valid(self):
        for name, (kind, unit, module) in obs.CATALOG.items():
            assert kind in ("counter", "gauge", "histogram"), name
            assert unit and module.startswith("repro."), name
        assert set(SCHEMES) == {"latency", "count"}


# --------------------------------------------------------------------------- #
# Daemon worker snapshots
# --------------------------------------------------------------------------- #
class TestDaemonWorkerMetrics:
    def test_worker_deltas_merge_exactly_once(self):
        with DaemonPool(workers=2) as pool:
            pool.run({"factor": 2}, [[1], [2], [3]], chunk_fn=_echo_chunk)
            pool.ping()  # pongs also carry drained deltas
        snap = obs.snapshot()
        # Three chunks ran in the workers; the drained deltas must add up to
        # exactly three in the parent — no double counting across the reset
        # boundary (fork-inherited registries are cleared at worker start).
        assert snap["counters"].get("daemon.worker.chunks") == 3
        assert snap["histograms"]["daemon.worker.chunk.seconds"]["count"] == 3
        assert snap["counters"].get("daemon.publishes") == 1

    def test_crash_injection_increments_global_restart_counter(self):
        with DaemonPool(workers=2) as pool:
            pool.run({"factor": 2}, [[1], [2]], chunk_fn=_echo_chunk)
            assert obs.snapshot()["counters"].get("daemon.restarts") is None
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            assert pool.run({"factor": 2}, [[5]], chunk_fn=_echo_chunk) == [[10]]
            assert pool.restarts >= 1
        assert obs.snapshot()["counters"].get("daemon.restarts", 0) >= 1
