"""The observability layer (``repro.obs``): exactness, mergeability, cost.

What is pinned down here:

* histogram percentiles track numpy's exact quantiles on well-populated
  seeded samples (to within one geometric bucket's width), and clamp to
  the observed min/max at the extremes;
* snapshot merging is associative and commutative (hypothesis, integer
  observations so float summation cannot blur the comparison) — the
  property that makes worker-delta folding order-independent;
* disabled mode (``REPRO_METRICS=0`` / ``set_enabled(False)``) hands out
  shared no-op singletons, registers nothing and allocates nothing on the
  hot path;
* instrumentation never changes answers: serial and daemon executors are
  bit-identical with metrics on and off;
* every name the live stack registers is in ``repro.obs.CATALOG``, and the
  tables in ``docs/OBSERVABILITY.md`` match the catalogue exactly — the
  docs cannot drift from the code;
* daemon workers drain their registries into the parent exactly once
  (chunk counts merge without double counting, even under ``fork``), and
  a crash-injected restart shows up in the global ``daemon.restarts``;
* the trace sink accepts a path, a file object or the ``REPRO_TRACE``
  environment variable, spans nest re-entrantly per thread, and every
  span name used anywhere in ``src/repro`` is registered in
  ``repro.obs.SPANS`` (grep-based lint).
"""

from __future__ import annotations

import io
import json
import os
import re
import signal
import threading
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.engine import QueryEngine
from repro.engine.daemons import DaemonPool
from repro.engine.queries import ReachQuery
from repro.graph.generators import random_graph
from repro.obs.metrics import SCHEMES, Histogram, MetricsRegistry, merge_snapshots

ROOT = Path(__file__).resolve().parent.parent
ALPHA = 0.1


@pytest.fixture(autouse=True)
def clean_registry():
    """Each test sees an enabled, empty global registry and restores state."""
    was_enabled = obs.enabled()
    obs.set_enabled(True)
    obs.REGISTRY.reset()
    yield
    obs.REGISTRY.reset()
    obs.set_enabled(was_enabled)


def _echo_chunk(state, task):
    return [state["factor"] * item for item in task]


def _signatures(answers):
    return [(a.reachable, a.visited, a.met_at, a.exhausted) for a in answers]


# --------------------------------------------------------------------------- #
# Histogram percentiles vs numpy
# --------------------------------------------------------------------------- #
class TestHistogramPercentiles:
    # Geometric buckets at ratio r are exact to within one bucket, and the
    # interpolated rank can straddle an adjacent bucket: a factor of r^2
    # (1.25^2 ≈ 1.6 on the latency scheme) bounds the estimate both ways.
    TOLERANCE = 1.25**2

    def test_tracks_numpy_quantiles_on_seeded_lognormal(self):
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-6.0, sigma=1.2, size=20_000)  # ~ms latencies
        histogram = Histogram("t")
        for value in samples:
            histogram.observe(float(value))
        for q in (0.10, 0.50, 0.90, 0.99, 0.999):
            exact = float(np.quantile(samples, q))
            estimate = histogram.percentile(q)
            assert exact / self.TOLERANCE <= estimate <= exact * self.TOLERANCE, (
                f"q={q}: histogram {estimate:.6f} vs numpy {exact:.6f}"
            )

    def test_extremes_clamp_to_observed_min_max(self):
        rng = np.random.default_rng(11)
        samples = rng.lognormal(mean=-4.0, sigma=1.0, size=500)
        histogram = Histogram("t")
        for value in samples:
            histogram.observe(float(value))
        assert histogram.percentile(0.0) == pytest.approx(float(samples.min()))
        assert histogram.percentile(1.0) == pytest.approx(float(samples.max()))

    def test_overflow_and_count_scheme(self):
        histogram = Histogram("t", scheme="count")
        for value in (0.5, 3.0, 2_000_000.0):  # below first bound / mid / overflow
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.counts[-1] == 1  # the overflow bucket
        assert histogram.percentile(1.0) == pytest.approx(2_000_000.0)

    def test_rejects_unknown_scheme_and_bad_quantile(self):
        with pytest.raises(ValueError):
            Histogram("t", scheme="nope")
        with pytest.raises(ValueError):
            Histogram("t").percentile(1.5)


# --------------------------------------------------------------------------- #
# Snapshot merge algebra (hypothesis)
# --------------------------------------------------------------------------- #
def _build_snapshot(events):
    """A registry snapshot from ``(slot, value)`` integer events."""
    registry = MetricsRegistry()
    for slot, value in events:
        registry.counter(f"c.{slot}").inc(value)
        registry.gauge(f"g.{slot}").set_max(float(value))
        registry.histogram(f"h.{slot}", scheme="count").observe(float(value))
    return registry.snapshot()


_events = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 1_000_000)),
    max_size=15,
)


class TestSnapshotMerge:
    @settings(suppress_health_check=[HealthCheck.function_scoped_fixture], deadline=None)
    @given(left=_events, right=_events)
    def test_commutative(self, left, right):
        a, b = _build_snapshot(left), _build_snapshot(right)
        assert merge_snapshots(a, b) == merge_snapshots(b, a)

    @settings(suppress_health_check=[HealthCheck.function_scoped_fixture], deadline=None)
    @given(first=_events, second=_events, third=_events)
    def test_associative(self, first, second, third):
        a, b, c = map(_build_snapshot, (first, second, third))
        assert merge_snapshots(merge_snapshots(a, b), c) == merge_snapshots(
            a, merge_snapshots(b, c)
        )

    def test_merge_semantics(self):
        a = _build_snapshot([("a", 3), ("a", 4)])
        b = _build_snapshot([("a", 10)])
        merged = merge_snapshots(a, b)
        assert merged["counters"]["c.a"] == 17  # counters add
        assert merged["gauges"]["g.a"] == 10.0  # gauges keep the peak
        assert merged["histograms"]["h.a"]["count"] == 3  # histograms union
        assert merged["histograms"]["h.a"]["min"] == 3.0
        assert merged["histograms"]["h.a"]["max"] == 10.0


# --------------------------------------------------------------------------- #
# Disabled mode
# --------------------------------------------------------------------------- #
class TestDisabledMode:
    def test_accessors_share_noop_singletons_and_register_nothing(self):
        obs.set_enabled(False)
        assert obs.counter("one") is obs.counter("two")
        assert obs.gauge("one") is obs.gauge("two")
        assert obs.histogram("one") is obs.histogram("two")
        obs.counter("one").inc(5)
        obs.histogram("one").observe(1.0)
        assert obs.REGISTRY.names() == []
        assert obs.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_hot_path_allocates_nothing_when_disabled(self):
        import tracemalloc

        obs.set_enabled(False)
        counter = obs.counter("noop")
        histogram = obs.histogram("noop")

        def hot_loop():
            for _ in range(1_000):
                counter.inc()
                histogram.observe(0.001)
                with obs.span("noop", attr=1):
                    pass

        hot_loop()  # warm any lazy interpreter state before measuring
        tracemalloc.start()
        try:
            before = tracemalloc.get_traced_memory()[0]
            hot_loop()
            grown = tracemalloc.get_traced_memory()[0] - before
        finally:
            tracemalloc.stop()
        assert grown < 512, f"disabled-mode hot path allocated {grown} bytes"


# --------------------------------------------------------------------------- #
# Instrumentation parity
# --------------------------------------------------------------------------- #
class TestInstrumentationParity:
    def test_answers_identical_with_metrics_on_and_off(self):
        graph = random_graph(num_nodes=220, num_edges=900, seed=13)
        nodes = list(graph.nodes())
        queries = [ReachQuery(nodes[i], nodes[-1 - i]) for i in range(18)]
        with QueryEngine(graph, cache_size=0) as engine:
            obs.set_enabled(True)
            on_serial = _signatures(engine.answer_batch(queries, ALPHA))
            on_daemon = _signatures(
                engine.answer_batch(queries, ALPHA, executor="daemon", workers=2)
            )
            obs.set_enabled(False)
            off_serial = _signatures(engine.answer_batch(queries, ALPHA))
            off_daemon = _signatures(
                engine.answer_batch(queries, ALPHA, executor="daemon", workers=2)
            )
        assert on_serial == off_serial == on_daemon == off_daemon


# --------------------------------------------------------------------------- #
# Catalogue <-> registry <-> docs
# --------------------------------------------------------------------------- #
_DOC_ROW = re.compile(r"^\|\s*`([a-z0-9._]+)`\s*\|\s*(counter|gauge|histogram|span)\b", re.M)


class TestCatalog:
    def test_live_registry_names_are_all_catalogued(self):
        """Exercise the stack end-to-end; every registered name must be known."""
        from repro.service import GraphService, ReachRequest, ServiceConfig
        from repro.updates.delta import GraphDelta

        graph = random_graph(num_nodes=200, num_edges=800, seed=3)
        nodes = list(graph.nodes())
        requests = [ReachRequest(nodes[i], nodes[-1 - i]) for i in range(12)]
        with GraphService(graph, ServiceConfig(executor="serial", alpha=ALPHA)) as service:
            service.run_batch(requests)
            service.run_batch(requests)  # cache-hit path
            delta = GraphDelta()
            delta.add_edge(nodes[0], nodes[1])
            service.update(delta)
        registered = set(obs.REGISTRY.names())
        unknown = registered - set(obs.CATALOG)
        assert not unknown, f"metrics registered but missing from CATALOG: {sorted(unknown)}"
        assert registered, "the exercised stack registered no metrics at all"

    def test_docs_table_matches_catalog_exactly(self):
        text = (ROOT / "docs" / "OBSERVABILITY.md").read_text(encoding="utf-8")
        rows = _DOC_ROW.findall(text)
        documented = {name: kind for name, kind in rows if kind != "span"}
        documented_spans = {name for name, kind in rows if kind == "span"}
        expected = {name: kind for name, (kind, _, _) in obs.CATALOG.items()}
        assert documented == expected, (
            "docs/OBSERVABILITY.md metric table drifted from repro.obs.CATALOG"
        )
        assert documented_spans == set(obs.SPANS), (
            "docs/OBSERVABILITY.md span table drifted from repro.obs.SPANS"
        )

    def test_catalog_histogram_schemes_are_valid(self):
        for name, (kind, unit, module) in obs.CATALOG.items():
            assert kind in ("counter", "gauge", "histogram"), name
            assert unit and module.startswith("repro."), name
        assert set(SCHEMES) == {"latency", "count"}


# --------------------------------------------------------------------------- #
# Trace sinks and span nesting
# --------------------------------------------------------------------------- #
@pytest.fixture
def clean_trace():
    """Each test starts and ends with tracing fully off."""
    from repro.obs import context, trace

    trace.set_sink(None)
    yield trace
    trace.set_sink(None)
    context.reset()


class TestTraceSinks:
    def test_set_sink_with_path_writes_json_lines(self, clean_trace, tmp_path):
        trace = clean_trace
        path = tmp_path / "trace.jsonl"
        trace.set_sink(str(path))
        assert trace.tracing()
        with obs.span("outer", stage=1):
            with obs.span("inner"):
                pass
        trace.set_sink(None)  # closes the owned file
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [record["span"] for record in records] == ["inner", "outer"]
        inner, outer = records
        assert inner["trace"] == outer["trace"]
        assert inner["parent_id"] == outer["id"]
        assert outer["parent_id"] is None
        assert inner["depth"] == 1 and outer["depth"] == 0
        assert outer["attrs"] == {"stage": 1}
        assert all(record["wall_ms"] >= 0 for record in records)

    def test_set_sink_with_file_object_is_not_closed(self, clean_trace):
        trace = clean_trace
        sink = io.StringIO()
        trace.set_sink(sink)
        with obs.span("one"):
            pass
        trace.set_sink(None)
        # An unowned sink must survive uninstalling (the caller owns it).
        assert not sink.closed
        assert json.loads(sink.getvalue())["span"] == "one"

    def test_repro_trace_env_installs_sink_at_import(self, clean_trace, tmp_path, monkeypatch):
        trace = clean_trace
        path = tmp_path / "env-trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        trace._init_from_env()
        try:
            with obs.span("from-env"):
                pass
        finally:
            trace.set_sink(None)
        assert json.loads(path.read_text().splitlines()[0])["span"] == "from-env"

    def test_span_returns_shared_noop_when_tracing_off(self, clean_trace):
        assert not clean_trace.tracing()
        assert obs.span("a") is obs.span("b")

    def test_reentrant_nesting_is_per_thread(self, clean_trace):
        """Two threads nest independently: no cross-thread parent linkage."""
        trace = clean_trace
        records = []
        trace.add_collector(records.append)
        barrier = threading.Barrier(2)

        def worker(tag):
            barrier.wait()
            with obs.span(f"{tag}.outer"):
                with obs.span(f"{tag}.mid"):
                    with obs.span(f"{tag}.leaf"):
                        pass

        threads = [threading.Thread(target=worker, args=(tag,)) for tag in ("t1", "t2")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        trace.remove_collector(records.append)

        by_tag = {}
        for record in records:
            by_tag.setdefault(record["span"].split(".")[0], []).append(record)
        assert set(by_tag) == {"t1", "t2"}
        for tag, group in by_tag.items():
            by_name = {record["span"]: record for record in group}
            outer, mid, leaf = (
                by_name[f"{tag}.outer"], by_name[f"{tag}.mid"], by_name[f"{tag}.leaf"]
            )
            # One trace per thread, linked leaf -> mid -> outer -> root.
            assert leaf["trace"] == mid["trace"] == outer["trace"]
            assert leaf["parent_id"] == mid["id"]
            assert mid["parent_id"] == outer["id"]
            assert outer["parent_id"] is None
            assert (outer["depth"], mid["depth"], leaf["depth"]) == (0, 1, 2)
        # The two threads must not share a trace.
        assert by_tag["t1"][0]["trace"] != by_tag["t2"][0]["trace"]


# --------------------------------------------------------------------------- #
# Span-name lint: every span used in src/repro is registered in SPANS
# --------------------------------------------------------------------------- #
_SPAN_CALL = re.compile(
    r"(?:obs\.span|trace\.span|obs\.trace\.span)\(\s*['\"]([a-z0-9._]+)['\"]"
)
_SEGMENT_CALL = re.compile(r"emit_segment\(\s*\n?\s*['\"]([a-z0-9._]+)['\"]")


class TestSpanLint:
    def test_every_span_name_in_source_is_registered(self):
        used = set()
        for path in (ROOT / "src" / "repro").rglob("*.py"):
            text = path.read_text(encoding="utf-8")
            used.update(_SPAN_CALL.findall(text))
            used.update(_SEGMENT_CALL.findall(text))
        assert used, "the span lint found no obs.span(...) call sites at all"
        unregistered = used - set(obs.SPANS)
        assert not unregistered, (
            f"span names used in src/repro but missing from obs.SPANS: "
            f"{sorted(unregistered)}"
        )


# --------------------------------------------------------------------------- #
# Histogram exemplars
# --------------------------------------------------------------------------- #
class TestExemplars:
    def test_counter_and_histogram_exemplars_survive_snapshot_merge(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2, exemplar="t.1")
        h = registry.histogram("h")
        for _ in range(8):
            h.observe(0.001, exemplar="t.fast")
        h.observe(5.0, exemplar="t.slow")
        snap = registry.snapshot()
        assert snap["exemplars"] == {"c": "t.1"}
        assert "t.slow" in snap["histograms"]["h"]["exemplars"].values()

        other = MetricsRegistry()
        other.merge(snap)
        assert other.counter("c").exemplar == "t.1"
        assert other.histogram("h").exemplar_for(0.99) == "t.slow"
        assert other.histogram("h").exemplar_for(0.50) == "t.fast"

        merged = merge_snapshots(snap, other.snapshot())
        assert merged["exemplars"] == {"c": "t.1"}

    def test_exemplar_free_snapshots_keep_legacy_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1)
        registry.histogram("h").observe(0.5)
        snap = registry.snapshot()
        assert "exemplars" not in snap
        assert "exemplars" not in snap["histograms"]["h"]

    def test_exemplar_for_falls_back_to_nearest_bucket_above(self):
        h = MetricsRegistry().histogram("h")
        for _ in range(20):
            h.observe(0.001)  # no exemplar on the p50/p99 bucket
        h.observe(9.0, exemplar="t.slow")
        assert h.exemplar_for(0.50) == "t.slow"  # nearest above wins
        assert h.exemplar_for(1.0) == "t.slow"
        assert MetricsRegistry().histogram("empty").exemplar_for(0.99) is None


# --------------------------------------------------------------------------- #
# Daemon worker snapshots
# --------------------------------------------------------------------------- #
class TestDaemonWorkerMetrics:
    def test_worker_deltas_merge_exactly_once(self):
        with DaemonPool(workers=2) as pool:
            pool.run({"factor": 2}, [[1], [2], [3]], chunk_fn=_echo_chunk)
            pool.ping()  # pongs also carry drained deltas
        snap = obs.snapshot()
        # Three chunks ran in the workers; the drained deltas must add up to
        # exactly three in the parent — no double counting across the reset
        # boundary (fork-inherited registries are cleared at worker start).
        assert snap["counters"].get("daemon.worker.chunks") == 3
        assert snap["histograms"]["daemon.worker.chunk.seconds"]["count"] == 3
        assert snap["counters"].get("daemon.publishes") == 1

    def test_crash_injection_increments_global_restart_counter(self):
        with DaemonPool(workers=2) as pool:
            pool.run({"factor": 2}, [[1], [2]], chunk_fn=_echo_chunk)
            assert obs.snapshot()["counters"].get("daemon.restarts") is None
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            assert pool.run({"factor": 2}, [[5]], chunk_fn=_echo_chunk) == [[10]]
            assert pool.restarts >= 1
        assert obs.snapshot()["counters"].get("daemon.restarts", 0) >= 1
