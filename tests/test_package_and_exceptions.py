"""Tests for the package surface (__init__ exports) and the exception hierarchy."""

import pytest

import repro
from repro import exceptions


class TestPackageSurface:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists {name} but it is not importable"

    def test_key_entry_points_exported(self):
        for name in ("RBSim", "RBSub", "RBReach", "DiGraph", "GraphPattern",
                     "youtube_like", "yahoo_like", "pattern_accuracy", "build_index"):
            assert name in repro.__all__

    def test_subpackages_importable(self):
        import repro.core
        import repro.experiments
        import repro.graph
        import repro.matching
        import repro.patterns
        import repro.reachability
        import repro.workloads

        for module in (repro.core, repro.graph, repro.matching, repro.patterns,
                       repro.reachability, repro.workloads, repro.experiments):
            assert module.__doc__, f"{module.__name__} must have a module docstring"

    def test_public_classes_have_docstrings(self):
        for name in repro.__all__:
            attribute = getattr(repro, name)
            if isinstance(attribute, type):
                assert attribute.__doc__, f"{name} is missing a docstring"


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(exceptions):
            candidate = getattr(exceptions, name)
            if isinstance(candidate, type) and issubclass(candidate, Exception) and candidate is not exceptions.ReproError:
                if candidate.__module__ == "repro.exceptions":
                    assert issubclass(candidate, exceptions.ReproError)

    def test_node_not_found_is_key_error(self):
        error = exceptions.NodeNotFoundError("x")
        assert isinstance(error, KeyError)
        assert error.node == "x"
        assert "x" in str(error)

    def test_edge_not_found_records_endpoints(self):
        error = exceptions.EdgeNotFoundError(1, 2)
        assert error.source == 1 and error.target == 2

    def test_catch_all_with_base_class(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.BudgetExhaustedError("out of budget")

    def test_graph_errors_are_catchable_separately(self):
        with pytest.raises(exceptions.GraphError):
            raise exceptions.NodeNotFoundError("missing")
