"""Tests for the GraphPattern model."""

import pytest

from repro.exceptions import PatternError
from repro.patterns.pattern import GraphPattern, example1_pattern, make_pattern


class TestConstruction:
    def test_basic_pattern(self):
        pattern = make_pattern({0: "A", 1: "B"}, [(0, 1)], personalized=0, output=1)
        assert pattern.num_nodes() == 2
        assert pattern.num_edges() == 1
        assert pattern.size() == 3
        assert pattern.shape() == (2, 1)
        assert pattern.personalized == 0
        assert pattern.output == 1

    def test_output_defaults_to_personalized(self):
        pattern = make_pattern({0: "A", 1: "B"}, [(0, 1)], personalized=0)
        assert pattern.output == 0

    def test_duplicate_edges_collapse(self):
        pattern = make_pattern({0: "A", 1: "B"}, [(0, 1), (0, 1)], personalized=0)
        assert pattern.num_edges() == 1

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            GraphPattern(labels={}, edges=(), personalized=0, output=0)

    def test_unknown_personalized_rejected(self):
        with pytest.raises(PatternError):
            make_pattern({0: "A"}, [], personalized=99)

    def test_unknown_output_rejected(self):
        with pytest.raises(PatternError):
            GraphPattern(labels={0: "A"}, edges=(), personalized=0, output=7)

    def test_edge_with_unknown_endpoint_rejected(self):
        with pytest.raises(PatternError):
            make_pattern({0: "A", 1: "B"}, [(0, 2)], personalized=0)

    def test_self_loop_rejected(self):
        with pytest.raises(PatternError):
            make_pattern({0: "A"}, [(0, 0)], personalized=0)


class TestStructure:
    def test_children_parents_neighbors(self, example1_query):
        assert set(example1_query.children("Michael")) == {"HG", "CC"}
        assert set(example1_query.parents("CL")) == {"CC", "HG"}
        assert set(example1_query.neighbors("CC")) == {"Michael", "CL"}
        assert example1_query.degree("CL") == 2

    def test_unknown_query_node_raises(self, example1_query):
        with pytest.raises(PatternError):
            example1_query.children("nope")
        with pytest.raises(PatternError):
            example1_query.label_of("nope")

    def test_has_edge(self, example1_query):
        assert example1_query.has_edge("Michael", "CC")
        assert not example1_query.has_edge("CC", "Michael")

    def test_labels(self, example1_query):
        assert example1_query.label_of("CL") == "CL"
        assert example1_query.distinct_labels() == {"Michael", "HG", "CC", "CL"}
        assert example1_query.num_distinct_labels() == 4


class TestDiameterAndValidation:
    def test_example1_diameter_is_two(self, example1_query):
        assert example1_query.diameter() == 2
        assert example1_query.undirected_diameter() == 2

    def test_single_node_diameter_zero(self):
        pattern = make_pattern({0: "A"}, [], personalized=0)
        assert pattern.diameter() == 0

    def test_single_edge_diameter_one(self):
        pattern = make_pattern({0: "A", 1: "B"}, [(0, 1)], personalized=0)
        assert pattern.diameter() == 1

    def test_path_pattern_diameter(self):
        pattern = make_pattern({0: "A", 1: "B", 2: "C"}, [(0, 1), (1, 2)], personalized=0, output=2)
        assert pattern.diameter() == 2

    def test_connected_pattern_validates(self, example1_query):
        assert example1_query.is_connected()
        example1_query.validate()

    def test_disconnected_pattern_fails_validation(self):
        pattern = make_pattern({0: "A", 1: "B", 2: "C"}, [(0, 1)], personalized=0)
        assert not pattern.is_connected()
        with pytest.raises(PatternError):
            pattern.validate()

    def test_to_digraph_mirrors_pattern(self, example1_query):
        graph = example1_query.to_digraph()
        assert graph.num_nodes() == example1_query.num_nodes()
        assert graph.num_edges() == example1_query.num_edges()
        assert graph.label("CC") == "CC"


class TestExample1Pattern:
    def test_shape_and_anchors(self):
        pattern = example1_pattern()
        assert pattern.shape() == (4, 4)
        assert pattern.personalized == "Michael"
        assert pattern.output == "CL"
