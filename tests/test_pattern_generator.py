"""Tests for the pattern workload generators."""

import pytest

from repro.exceptions import WorkloadError
from repro.graph.digraph import DiGraph
from repro.graph.generators import DEFAULT_ALPHABET, path_graph
from repro.matching.strong_simulation import strong_simulation
from repro.patterns.generator import embedded_pattern, pattern_workload, random_pattern


class TestRandomPattern:
    def test_requested_shape(self):
        pattern = random_pattern(5, 7, DEFAULT_ALPHABET, seed=1)
        assert pattern.shape() == (5, 7)

    def test_connected(self):
        pattern = random_pattern(6, 8, DEFAULT_ALPHABET, seed=2)
        assert pattern.is_connected()

    def test_personalized_label_override(self):
        pattern = random_pattern(4, 4, DEFAULT_ALPHABET, seed=3, personalized_label="ME")
        assert pattern.label_of(pattern.personalized) == "ME"

    def test_deterministic(self):
        assert random_pattern(4, 5, DEFAULT_ALPHABET, seed=4).edges == random_pattern(
            4, 5, DEFAULT_ALPHABET, seed=4
        ).edges

    def test_impossible_shapes_rejected(self):
        with pytest.raises(WorkloadError):
            random_pattern(0, 0, DEFAULT_ALPHABET)
        with pytest.raises(WorkloadError):
            random_pattern(3, 1, DEFAULT_ALPHABET)  # cannot be connected
        with pytest.raises(WorkloadError):
            random_pattern(3, 10, DEFAULT_ALPHABET)  # too many edges


class TestEmbeddedPattern:
    def test_embedded_pattern_has_nonempty_exact_answer(self, small_social_graph):
        pattern, match = embedded_pattern(small_social_graph, 4, 5, seed=7)
        assert pattern.shape()[0] == 4
        result = strong_simulation(pattern, small_social_graph, match)
        assert result.answer, "an embedded pattern must match the graph it came from"

    def test_personalized_node_is_returned_seed(self, small_social_graph):
        pattern, match = embedded_pattern(small_social_graph, 4, 5, seed=9)
        assert match in small_social_graph
        # The personalized query node carries a synthetic identity label.
        label = pattern.label_of(pattern.personalized)
        assert isinstance(label, tuple) and label[0] == "@person"

    def test_output_node_differs_from_personalized(self, small_social_graph):
        pattern, _ = embedded_pattern(small_social_graph, 5, 6, seed=11)
        assert pattern.output != pattern.personalized

    def test_empty_graph_rejected(self):
        with pytest.raises(WorkloadError):
            embedded_pattern(DiGraph(), 3, 3)

    def test_too_large_pattern_rejected(self):
        graph = path_graph(2)  # 3 nodes in a path
        with pytest.raises(WorkloadError):
            embedded_pattern(graph, 10, 12, seed=1)

    def test_specific_personalized_node(self, small_social_graph):
        seed_node = max(small_social_graph.nodes(), key=small_social_graph.degree)
        pattern, match = embedded_pattern(
            small_social_graph, 4, 5, seed=3, personalized_node=seed_node
        )
        assert match == seed_node


class TestPatternWorkloadHelper:
    def test_generates_requested_count(self, small_social_graph):
        workload = pattern_workload(small_social_graph, (4, 5), count=3, seed=5)
        assert len(workload) == 3
        for pattern, match in workload:
            assert pattern.shape()[0] == 4
            assert match in small_social_graph
