"""Property-based tests (hypothesis) for the graph substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.components import condensation, is_dag, strongly_connected_components
from repro.graph.digraph import DiGraph
from repro.graph.neighborhood import nodes_within_hops
from repro.graph.subgraph import induced_subgraph, is_subgraph
from repro.graph.topology import topological_ranks, verify_rank_invariant
from repro.graph.traversal import bidirectional_reachable, bfs_levels, is_reachable


@st.composite
def random_digraphs(draw, max_nodes=14, max_edges=35):
    """Small random digraphs with labels from a 3-letter alphabet."""
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    labels = draw(
        st.lists(st.sampled_from(["A", "B", "C"]), min_size=num_nodes, max_size=num_nodes)
    )
    graph = DiGraph()
    for node, label in enumerate(labels):
        graph.add_node(node, label)
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_nodes - 1),
                st.integers(min_value=0, max_value=num_nodes - 1),
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    for source, target in pairs:
        if source != target:
            graph.add_edge(source, target)
    return graph


@settings(max_examples=60, deadline=None)
@given(random_digraphs())
def test_graph_invariants_hold(graph):
    """Structural invariants: size accounting and adjacency symmetry."""
    graph.validate()
    assert graph.size() == graph.num_nodes() + graph.num_edges()
    for source, target in graph.edges():
        assert source in graph.predecessors(target)
        assert target in graph.successors(source)


@settings(max_examples=60, deadline=None)
@given(random_digraphs())
def test_copy_equals_original(graph):
    assert graph.copy() == graph


@settings(max_examples=50, deadline=None)
@given(random_digraphs())
def test_scc_partition_and_condensation_dag(graph):
    """SCCs partition the nodes and the condensation is an acyclic DAG."""
    components = strongly_connected_components(graph)
    all_nodes = [node for component in components for node in component]
    assert sorted(all_nodes) == sorted(graph.nodes())
    assert len(all_nodes) == graph.num_nodes()
    result = condensation(graph)
    assert is_dag(result.dag)


@settings(max_examples=40, deadline=None)
@given(random_digraphs(), st.integers(min_value=0, max_value=13), st.integers(min_value=0, max_value=13))
def test_condensation_preserves_reachability(graph, source_index, target_index):
    """For sampled pairs, reachability on G equals reachability on the condensation."""
    nodes = sorted(graph.nodes())
    source = nodes[source_index % len(nodes)]
    target = nodes[target_index % len(nodes)]
    result = condensation(graph)
    original = bidirectional_reachable(graph, source, target)
    source_component = result.component_of(source)
    target_component = result.component_of(target)
    via_dag = source_component == target_component or is_reachable(
        result.dag, source_component, target_component
    )
    assert original == via_dag


@settings(max_examples=40, deadline=None)
@given(random_digraphs())
def test_topological_ranks_on_condensation(graph):
    """Ranks satisfy their defining recurrence and decrease along edges."""
    dag = condensation(graph).dag
    ranks = topological_ranks(dag)
    assert verify_rank_invariant(dag, ranks)
    for source, target in dag.edges():
        assert ranks[source] > ranks[target]


@settings(max_examples=40, deadline=None)
@given(random_digraphs(), st.integers(min_value=0, max_value=3))
def test_ball_monotone_in_radius(graph, radius):
    """N_r(v) grows with r and the induced ball is a subgraph of G."""
    center = sorted(graph.nodes())[0]
    smaller = nodes_within_hops(graph, center, radius)
    larger = nodes_within_hops(graph, center, radius + 1)
    assert smaller <= larger
    assert is_subgraph(induced_subgraph(graph, smaller), graph)


@settings(max_examples=40, deadline=None)
@given(random_digraphs())
def test_bfs_levels_are_shortest_distances(graph):
    """Hop levels never exceed the number of nodes and neighbours differ by <= 1."""
    source = sorted(graph.nodes())[0]
    levels = bfs_levels(graph, source, direction="forward")
    assert levels[source] == 0
    for node, level in levels.items():
        assert level <= graph.num_nodes()
        for child in graph.successors(node):
            if child in levels:
                assert levels[child] <= level + 1
