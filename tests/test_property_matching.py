"""Property-based tests for matching semantics and resource-bounded answers.

The key invariants checked here mirror the paper's claims:

* dual simulation relations verify against their definition;
* subgraph-isomorphism answers are always a subset of dual-simulation answers
  restricted to the same ball (isomorphism is a stricter semantics);
* the resource-bounded algorithms never exceed their budget and never return
  a node that the exact algorithm rejects (no false positives for patterns —
  both evaluate on subgraphs of the same ball);
* RBReach never returns a false positive (Theorem 4(c)).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budget import ResourceBudget
from repro.core.rbsim import rbsim
from repro.core.rbsub import rbsub
from repro.graph.digraph import DiGraph
from repro.graph.traversal import bidirectional_reachable
from repro.matching.simulation import dual_simulation, verify_dual_simulation
from repro.matching.strong_simulation import strong_simulation
from repro.matching.vf2 import vf2_opt
from repro.patterns.generator import embedded_pattern
from repro.reachability.rbreach import RBReach


@st.composite
def labeled_graphs(draw, min_nodes=6, max_nodes=20):
    """Connected-ish random digraphs with a small label alphabet."""
    num_nodes = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    labels = draw(
        st.lists(st.sampled_from(["A", "B", "C", "D"]), min_size=num_nodes, max_size=num_nodes)
    )
    graph = DiGraph()
    for node, label in enumerate(labels):
        graph.add_node(node, label)
    # A random tree backbone keeps the graph weakly connected.
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    for node in range(1, num_nodes):
        anchor = rng.randrange(node)
        if rng.random() < 0.5:
            graph.add_edge(anchor, node)
        else:
            graph.add_edge(node, anchor)
    extra = draw(st.integers(min_value=0, max_value=2 * num_nodes))
    for _ in range(extra):
        source = rng.randrange(num_nodes)
        target = rng.randrange(num_nodes)
        if source != target:
            graph.add_edge(source, target)
    return graph


@settings(max_examples=30, deadline=None)
@given(labeled_graphs(), st.integers(min_value=0, max_value=10_000))
def test_dual_simulation_relation_verifies(graph, seed):
    try:
        pattern, vp = embedded_pattern(graph, 3, 3, seed=seed)
    except Exception:
        return  # graph too sparse for an embedded pattern: nothing to check
    relation = dual_simulation(pattern, graph, vp)
    assert verify_dual_simulation(pattern, graph, relation, vp)


@settings(max_examples=25, deadline=None)
@given(labeled_graphs(), st.integers(min_value=0, max_value=10_000))
def test_isomorphism_answer_subset_of_simulation(graph, seed):
    try:
        pattern, vp = embedded_pattern(graph, 3, 3, seed=seed)
    except Exception:
        return
    sim_answer = strong_simulation(pattern, graph, vp).answer
    iso_answer = vf2_opt(pattern, graph, vp).answer
    assert iso_answer <= sim_answer


@settings(max_examples=25, deadline=None)
@given(
    labeled_graphs(),
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=0.05, max_value=0.9),
)
def test_rbsim_budget_and_no_false_positives(graph, seed, alpha):
    try:
        pattern, vp = embedded_pattern(graph, 3, 3, seed=seed)
    except Exception:
        return
    exact = strong_simulation(pattern, graph, vp).answer
    answer = rbsim(pattern, graph, vp, alpha=alpha)
    assert answer.subgraph_size <= max(1, int(alpha * graph.size()))
    assert answer.answer <= exact


@settings(max_examples=20, deadline=None)
@given(
    labeled_graphs(),
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=0.05, max_value=0.9),
)
def test_rbsub_budget_and_no_false_positives(graph, seed, alpha):
    try:
        pattern, vp = embedded_pattern(graph, 3, 3, seed=seed)
    except Exception:
        return
    exact = vf2_opt(pattern, graph, vp).answer
    answer = rbsub(pattern, graph, vp, alpha=alpha)
    assert answer.subgraph_size <= max(1, int(alpha * graph.size()))
    assert answer.answer <= exact


@settings(max_examples=20, deadline=None)
@given(
    labeled_graphs(min_nodes=8, max_nodes=24),
    st.floats(min_value=0.05, max_value=0.5),
    st.integers(min_value=0, max_value=10_000),
)
def test_rbreach_no_false_positives(graph, alpha, seed):
    """Theorem 4(c): RBReach returns True only when the pair is truly reachable."""
    matcher = RBReach.from_graph(graph, alpha=alpha)
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    for _ in range(10):
        source = rng.choice(nodes)
        target = rng.choice(nodes)
        if matcher.query(source, target).reachable:
            assert source == target or bidirectional_reachable(graph, source, target)


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=0.001, max_value=1.0),
    st.integers(min_value=1, max_value=100_000),
    st.floats(min_value=0.5, max_value=500.0),
)
def test_budget_limits_are_consistent(alpha, graph_size, coefficient):
    """size_limit <= alpha*|G| (+1 floor) and visit limit scales with c."""
    budget = ResourceBudget(alpha=alpha, graph_size=graph_size, visit_coefficient=coefficient)
    assert budget.size_limit >= 1
    assert budget.size_limit <= max(1, int(alpha * graph_size))
    assert budget.visit_limit >= 1
    assert budget.visit_limit <= max(1, int(coefficient * alpha * graph_size))
