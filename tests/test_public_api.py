"""Pin the public import surface: every ``__all__`` name must import.

Walks every package under ``repro`` and asserts:

* each package ``__init__`` declares an explicit ``__all__``;
* every listed name resolves (deprecated shims included — they must warn,
  not break);
* no duplicates, and nothing in ``__all__`` that ``dir()`` cannot see
  (modulo lazy ``__getattr__`` shims);
* the curated ``repro.service`` surface is re-exported at the top level.

This is the regression net for the export audit: adding a name to a
façade without exporting it (or exporting a name that does not exist)
fails here rather than in a downstream import.
"""

from __future__ import annotations

import importlib
import pkgutil
import warnings

import pytest

import repro

EXPECTED_PACKAGES = {
    "repro",
    "repro.core",
    "repro.engine",
    "repro.experiments",
    "repro.graph",
    "repro.matching",
    "repro.patterns",
    "repro.reachability",
    "repro.service",
    "repro.shard",
    "repro.subscribe",
    "repro.updates",
    "repro.workloads",
}

#: Public plain modules (not packages) whose surface is pinned too.
EXPECTED_MODULES = {"repro.exceptions"}


def _all_packages():
    names = {"repro"}
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.ispkg:
            names.add(info.name)
    return sorted(names)


@pytest.fixture(scope="module")
def packages():
    return _all_packages()


class TestExportSurface:
    def test_every_expected_package_exists(self, packages):
        assert EXPECTED_PACKAGES <= set(packages), (
            "a package disappeared; update EXPECTED_PACKAGES if intentional"
        )

    @pytest.mark.parametrize("module_name", sorted(EXPECTED_PACKAGES | EXPECTED_MODULES))
    def test_declares_explicit_all(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), f"{module_name} has no explicit __all__"
        exported = module.__all__
        assert isinstance(exported, (list, tuple))
        assert all(isinstance(name, str) for name in exported)
        assert len(exported) == len(set(exported)), f"{module_name}.__all__ has duplicates"

    @pytest.mark.parametrize("module_name", sorted(EXPECTED_PACKAGES | EXPECTED_MODULES))
    def test_every_name_in_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        with warnings.catch_warnings():
            # Deprecated shims are allowed to warn here; breaking is not.
            warnings.simplefilter("ignore", DeprecationWarning)
            missing = [name for name in module.__all__ if not hasattr(module, name)]
        assert not missing, f"{module_name}.__all__ lists unresolvable names: {missing}"

    def test_undiscovered_packages_also_have_all(self, packages):
        # Future packages outside EXPECTED_PACKAGES must still declare __all__.
        for module_name in packages:
            module = importlib.import_module(module_name)
            assert hasattr(module, "__all__"), f"{module_name} has no explicit __all__"

    def test_service_surface_reexported_at_top_level(self):
        for name in (
            "GraphService",
            "ServiceConfig",
            "ReachRequest",
            "PatternRequest",
            "ServiceAnswer",
            "ServiceStats",
        ):
            assert name in repro.__all__, f"repro.__all__ is missing {name}"
            assert getattr(repro, name) is getattr(
                importlib.import_module("repro.service"), name
            )

    def test_removed_serving_shims_are_gone(self):
        # The PR 5 lazy deprecation shims had a one-release window; it has
        # passed.  The names must be absent from the top level for good —
        # the low-level API lives in repro.shard.
        for name in ("ShardedEngine", "Partition", "partition_graph"):
            assert name not in repro.__all__
            with pytest.raises(AttributeError):
                getattr(repro, name)
            assert hasattr(importlib.import_module("repro.shard"), name)

    def test_kernel_dispatch_surface_exported(self):
        graph_pkg = importlib.import_module("repro.graph")
        for name in ("KERNELS", "KernelRegistry", "ReachBatch", "reach_batch", "traverse"):
            assert name in graph_pkg.__all__, f"repro.graph.__all__ is missing {name}"

    def test_star_import_of_service_is_clean(self):
        namespace: dict = {}
        exec("from repro.service import *", namespace)  # noqa: S102 - deliberate
        module = importlib.import_module("repro.service")
        for name in module.__all__:
            assert name in namespace
