"""Tests for the RBReach resource-bounded reachability algorithm."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import path_graph, preferential_attachment_graph
from repro.graph.traversal import bidirectional_reachable
from repro.reachability.hierarchy import build_index
from repro.reachability.rbreach import RBReach, rbreach
from repro.workloads.queries import generate_reachability_workload


@pytest.fixture(scope="module")
def social_graph():
    return preferential_attachment_graph(800, edges_per_node=2, seed=5, back_edge_probability=0.05)


@pytest.fixture(scope="module")
def reach(social_graph):
    return RBReach(build_index(social_graph, alpha=0.1))


class TestSoundness:
    def test_never_returns_false_positive(self, social_graph, reach):
        workload = generate_reachability_workload(social_graph, count=80, seed=3)
        for pair in workload.pairs:
            if reach.query(*pair).reachable:
                assert bidirectional_reachable(social_graph, *pair), (
                    f"RBReach returned a false positive for {pair}"
                )

    def test_same_scc_pairs_are_true(self, two_cycle_graph):
        matcher = RBReach.from_graph(two_cycle_graph, alpha=0.9)
        assert matcher.query(0, 2).reachable
        assert matcher.query(3, 5).reachable

    def test_unknown_nodes_answer_false(self, reach):
        assert not reach.query("ghost", "other-ghost").reachable

    def test_rank_pruning_rejects_impossible_direction(self):
        graph = path_graph(6)
        matcher = RBReach.from_graph(graph, alpha=0.9)
        answer = matcher.query(5, 0)
        assert not answer.reachable
        assert answer.visited <= 1  # rejected by the rank check alone


class TestRecall:
    def test_generous_index_answers_path_queries(self):
        graph = path_graph(30)
        matcher = RBReach.from_graph(graph, alpha=0.9)
        assert matcher.query(0, 30).reachable
        assert matcher.query(5, 25).reachable
        assert not matcher.query(30, 0).reachable

    def test_accuracy_reasonable_on_social_graph(self, social_graph, reach):
        from repro.core.accuracy import boolean_accuracy

        workload = generate_reachability_workload(social_graph, count=80, seed=7)
        answers = reach.query_many(workload.pairs)
        report = boolean_accuracy(workload.truth, answers)
        assert report.precision >= 0.95
        assert report.recall >= 0.7

    def test_larger_alpha_never_much_worse(self, social_graph):
        from repro.core.accuracy import boolean_accuracy

        workload = generate_reachability_workload(social_graph, count=60, seed=9)
        small = RBReach(build_index(social_graph, alpha=0.02)).query_many(workload.pairs)
        large = RBReach(build_index(social_graph, alpha=0.3)).query_many(workload.pairs)
        small_acc = boolean_accuracy(workload.truth, small).f_measure
        large_acc = boolean_accuracy(workload.truth, large).f_measure
        assert large_acc >= small_acc - 0.05


class TestResourceBound:
    def test_visit_limit_respected(self, social_graph, reach):
        workload = generate_reachability_workload(social_graph, count=40, seed=11)
        for pair in workload.pairs:
            answer = reach.query(*pair)
            assert answer.visited <= reach.visit_limit + 1

    def test_visit_limit_equals_budget(self, reach):
        assert reach.visit_limit == max(1, reach.index.size_budget)

    def test_query_many_returns_all_pairs(self, social_graph, reach):
        workload = generate_reachability_workload(social_graph, count=20, seed=13)
        answers = reach.query_many(workload.pairs)
        assert set(answers) == set(workload.pairs)


class TestConvenience:
    def test_rbreach_wrapper(self):
        graph = path_graph(10)
        assert rbreach(graph, 0.9, 0, 10) is True
        assert rbreach(graph, 0.9, 10, 0) is False

    def test_from_graph_builds_index(self, two_cycle_graph):
        matcher = RBReach.from_graph(two_cycle_graph, alpha=0.5)
        assert matcher.index.size_budget >= 2
        assert matcher.query(0, 4).reachable  # 0 -> 2 -> 3 -> 4 via bridge
