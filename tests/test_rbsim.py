"""Tests for the RBSim resource-bounded strong-simulation algorithm."""

import pytest

from repro.core.accuracy import pattern_accuracy
from repro.core.rbsim import RBSim, RBSimConfig, rbsim
from repro.graph.neighborhood import NeighborhoodIndex
from repro.graph.subgraph import is_subgraph
from repro.matching.strong_simulation import strong_simulation
from repro.patterns.generator import embedded_pattern
from repro.workloads.queries import generate_pattern_workload


class TestRBSimExample1:
    def test_exact_answer_with_generous_budget(self, example1_graph, example1_query):
        answer = rbsim(example1_query, example1_graph, "Michael", alpha=0.9)
        assert answer.answer == {"cl3", "cl4"}

    def test_subgraph_is_within_budget_and_host(self, example1_graph, example1_query):
        matcher = RBSim(example1_graph, alpha=0.5)
        answer = matcher.answer(example1_query, "Michael")
        assert answer.budget is not None
        assert answer.budget.within_size_bound
        assert is_subgraph(answer.subgraph, example1_graph)
        assert answer.subgraph_size <= answer.budget.size_limit

    def test_small_alpha_gives_subset_answer(self, example1_graph, example1_query):
        exact = strong_simulation(example1_query, example1_graph, "Michael").answer
        answer = rbsim(example1_query, example1_graph, "Michael", alpha=0.12)
        assert answer.answer <= exact

    def test_missing_personalized_match(self, example1_graph, example1_query):
        answer = rbsim(example1_query, example1_graph, "nobody", alpha=0.5)
        assert answer.answer == set()
        assert answer.subgraph_size == 0

    def test_example2_small_budget_still_exact(self, example1_graph, example1_query):
        # Mirrors Example 2: a budget of ~16 items suffices for 100% accuracy.
        alpha = 16 / example1_graph.size()
        answer = rbsim(example1_query, example1_graph, "Michael", alpha=alpha)
        exact = strong_simulation(example1_query, example1_graph, "Michael").answer
        assert pattern_accuracy(exact, answer.answer).f_measure == 1.0


class TestRBSimOnSurrogates:
    def test_no_false_positives_wrt_exact(self, small_social_graph):
        workload = generate_pattern_workload(small_social_graph, (4, 6), count=3, seed=2)
        matcher = RBSim(small_social_graph, alpha=0.05)
        for query in workload:
            exact = strong_simulation(query.pattern, small_social_graph, query.personalized_match).answer
            approx = matcher.answer(query.pattern, query.personalized_match).answer
            assert approx <= exact, "RBSim must never report a node that is not an exact match"

    def test_generous_budget_reaches_full_accuracy(self, small_social_graph):
        pattern, vp = embedded_pattern(small_social_graph, 4, 5, seed=8)
        exact = strong_simulation(pattern, small_social_graph, vp).answer
        approx = rbsim(pattern, small_social_graph, vp, alpha=0.9).answer
        assert pattern_accuracy(exact, approx).f_measure == 1.0

    def test_accuracy_never_decreases_with_alpha_for_fixed_query(self, small_social_graph):
        pattern, vp = embedded_pattern(small_social_graph, 4, 6, seed=15)
        exact = strong_simulation(pattern, small_social_graph, vp).answer
        scores = []
        for alpha in (0.01, 0.2, 0.9):
            approx = rbsim(pattern, small_social_graph, vp, alpha=alpha).answer
            scores.append(pattern_accuracy(exact, approx).f_measure)
        assert scores[-1] == 1.0

    def test_shared_neighborhood_index_gives_same_answer(self, small_social_graph):
        index = NeighborhoodIndex(small_social_graph)
        index.precompute()
        shared = RBSim(small_social_graph, alpha=0.1, neighborhood_index=index)
        fresh = RBSim(small_social_graph, alpha=0.1)
        pattern, vp = embedded_pattern(small_social_graph, 4, 5, seed=4)
        assert shared.answer(pattern, vp).answer == fresh.answer(pattern, vp).answer
        assert len(index) == small_social_graph.num_nodes()

    def test_visit_bound_holds(self, small_social_graph):
        pattern, vp = embedded_pattern(small_social_graph, 4, 5, seed=6)
        matcher = RBSim(small_social_graph, alpha=0.05)
        answer = matcher.answer(pattern, vp)
        assert answer.budget.visited <= answer.budget.visit_limit * 1.0 + small_social_graph.max_degree()


class TestRBSimConfig:
    def test_properties_exposed(self, example1_graph):
        matcher = RBSim(example1_graph, alpha=0.3)
        assert matcher.alpha == 0.3
        assert matcher.graph is example1_graph

    def test_unanchored_mode_returns_some_answer(self, example1_graph, example1_query):
        config = RBSimConfig(allow_unanchored=True)
        matcher = RBSim(example1_graph, alpha=0.9, config=config)
        answer = matcher.answer(example1_query, personalized_match=None)
        # The unanchored extension seeds from a label-based guess; it must not
        # crash and must stay within budget.
        assert answer.budget is None or answer.budget.within_size_bound

    def test_anchored_mode_requires_match(self, example1_graph, example1_query):
        matcher = RBSim(example1_graph, alpha=0.5)
        answer = matcher.answer(example1_query, personalized_match=None)
        assert answer.answer == set()

    def test_reduce_only_entry_point(self, example1_graph, example1_query):
        matcher = RBSim(example1_graph, alpha=0.5)
        reduction = matcher.reduce(example1_query, "Michael")
        assert reduction.subgraph.num_nodes() >= 1
