"""Tests for the RBSub resource-bounded subgraph-isomorphism algorithm."""

import pytest

from repro.core.accuracy import pattern_accuracy
from repro.core.rbsub import RBSub, RBSubConfig, rbsub
from repro.graph.subgraph import is_subgraph
from repro.matching.vf2 import vf2_opt
from repro.patterns.generator import embedded_pattern
from repro.workloads.queries import generate_pattern_workload


class TestRBSubExample1:
    def test_exact_answer_with_generous_budget(self, example1_graph, example1_query):
        answer = rbsub(example1_query, example1_graph, "Michael", alpha=0.9)
        assert answer.answer == {"cl3", "cl4"}

    def test_budget_and_subgraph_invariants(self, example1_graph, example1_query):
        matcher = RBSub(example1_graph, alpha=0.5)
        answer = matcher.answer(example1_query, "Michael")
        assert answer.budget.within_size_bound
        assert is_subgraph(answer.subgraph, example1_graph)

    def test_missing_personalized_match(self, example1_graph, example1_query):
        answer = rbsub(example1_query, example1_graph, "nobody", alpha=0.5)
        assert answer.answer == set()

    def test_small_alpha_answer_is_subset(self, example1_graph, example1_query):
        exact = vf2_opt(example1_query, example1_graph, "Michael").answer
        approx = rbsub(example1_query, example1_graph, "Michael", alpha=0.12).answer
        assert approx <= exact


class TestRBSubOnSurrogates:
    def test_no_false_positives_wrt_exact(self, small_social_graph):
        workload = generate_pattern_workload(small_social_graph, (4, 6), count=3, seed=5)
        matcher = RBSub(small_social_graph, alpha=0.05)
        for query in workload:
            exact = vf2_opt(query.pattern, small_social_graph, query.personalized_match).answer
            approx = matcher.answer(query.pattern, query.personalized_match).answer
            assert approx <= exact

    def test_generous_budget_reaches_full_accuracy(self, small_social_graph):
        pattern, vp = embedded_pattern(small_social_graph, 4, 5, seed=12)
        exact = vf2_opt(pattern, small_social_graph, vp).answer
        approx = rbsub(pattern, small_social_graph, vp, alpha=0.9).answer
        assert pattern_accuracy(exact, approx).f_measure == 1.0

    def test_isomorphism_answer_subset_of_simulation_answer(self, example1_graph, example1_query):
        from repro.core.rbsim import rbsim

        sim_answer = rbsim(example1_query, example1_graph, "Michael", alpha=0.9).answer
        sub_answer = rbsub(example1_query, example1_graph, "Michael", alpha=0.9).answer
        # On this instance both semantics agree; in general isomorphism answers
        # computed on the same G_Q cannot contain nodes simulation rejects.
        assert sub_answer <= sim_answer or sub_answer == {"cl3", "cl4"}


class TestRBSubConfig:
    def test_embedding_cap_configurable(self, example1_graph, example1_query):
        config = RBSubConfig(max_embeddings=1)
        matcher = RBSub(example1_graph, alpha=0.9, config=config)
        answer = matcher.answer(example1_query, "Michael")
        assert len(answer.answer) >= 1  # at least the first embedding's output

    def test_properties(self, example1_graph):
        matcher = RBSub(example1_graph, alpha=0.25)
        assert matcher.alpha == 0.25
        assert matcher.graph is example1_graph

    def test_reduce_entry_point(self, example1_graph, example1_query):
        matcher = RBSub(example1_graph, alpha=0.5)
        reduction = matcher.reduce(example1_query, "Michael")
        assert "Michael" in reduction.subgraph
