"""Tests for the BFS, BFSOpt and LM reachability baselines."""

import pytest

from repro.graph.generators import path_graph, preferential_attachment_graph
from repro.graph.traversal import bidirectional_reachable
from repro.reachability.baselines import (
    BFSOptReachability,
    BFSReachability,
    LandmarkVectorReachability,
    exact_answers,
)
from repro.workloads.queries import generate_reachability_workload


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment_graph(500, edges_per_node=2, seed=17, back_edge_probability=0.1)


@pytest.fixture(scope="module")
def workload(graph):
    return generate_reachability_workload(graph, count=60, seed=4)


class TestBFS:
    def test_exact_on_path(self):
        graph = path_graph(8)
        bfs = BFSReachability(graph)
        assert bfs.query(0, 8).reachable
        assert not bfs.query(8, 0).reachable
        assert bfs.query(3, 3).reachable

    def test_matches_oracle(self, graph, workload):
        bfs = BFSReachability(graph)
        for pair in workload.pairs:
            assert bfs.query(*pair).reachable == workload.truth[pair]

    def test_visit_count_reported(self, graph, workload):
        bfs = BFSReachability(graph)
        answer = bfs.query(*workload.pairs[0])
        assert answer.visited >= 1


class TestBFSOpt:
    def test_matches_bfs_on_workload(self, graph, workload):
        bfs = BFSReachability(graph)
        bfsopt = BFSOptReachability(graph)
        for pair in workload.pairs:
            assert bfsopt.query(*pair).reachable == bfs.query(*pair).reachable

    def test_same_component_shortcut(self, two_cycle_graph):
        bfsopt = BFSOptReachability(two_cycle_graph)
        answer = bfsopt.query(0, 2)
        assert answer.reachable
        assert answer.visited == 1

    def test_unknown_nodes(self, graph):
        bfsopt = BFSOptReachability(graph)
        assert not bfsopt.query("nope", "also-nope").reachable

    def test_exact_answers_helper(self, graph, workload):
        answers = exact_answers(graph, workload.pairs)
        assert answers == workload.truth


class TestLandmarkVector:
    def test_no_false_positives(self, graph, workload):
        landmark = LandmarkVectorReachability(graph, seed=2)
        for pair in workload.pairs:
            if landmark.query(*pair).reachable:
                assert bidirectional_reachable(graph, *pair)

    def test_self_query_true(self, graph):
        landmark = LandmarkVectorReachability(graph, seed=2)
        node = next(iter(graph.nodes()))
        assert landmark.query(node, node).reachable

    def test_default_landmark_count_is_4_log_v(self, graph):
        import math

        landmark = LandmarkVectorReachability(graph, seed=2)
        assert len(landmark.landmarks) == max(1, int(4 * math.log(graph.num_nodes())))

    def test_explicit_landmark_count(self, graph):
        landmark = LandmarkVectorReachability(graph, num_landmarks=5, seed=2)
        assert len(landmark.landmarks) == 5

    def test_query_many_covers_all_pairs(self, graph, workload):
        landmark = LandmarkVectorReachability(graph, seed=2)
        answers = landmark.query_many(workload.pairs)
        assert set(answers) == set(workload.pairs)

    def test_recall_below_perfect_is_allowed_but_not_zero(self, graph, workload):
        from repro.core.accuracy import boolean_accuracy

        landmark = LandmarkVectorReachability(graph, seed=2)
        report = boolean_accuracy(workload.truth, landmark.query_many(workload.pairs))
        assert report.f_measure > 0.4
