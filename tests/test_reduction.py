"""Tests for the dynamic reduction (Search / Pick) machinery."""

import pytest

from repro.core.budget import ResourceBudget
from repro.core.reduction import DynamicReducer
from repro.core.weights import SimulationGuard
from repro.graph.neighborhood import NeighborhoodIndex
from repro.graph.subgraph import is_subgraph
from repro.patterns.pattern import make_pattern


def make_reducer(graph, pattern, vp, alpha, **kwargs):
    index = NeighborhoodIndex(graph)
    guard = SimulationGuard(pattern, graph, vp, index)
    budget = ResourceBudget(alpha=alpha, graph_size=graph.size(), visit_coefficient=graph.max_degree() or 1)
    return DynamicReducer(
        pattern=pattern,
        graph=graph,
        personalized_match=vp,
        guard=guard,
        budget=budget,
        neighborhood_index=index,
        **kwargs,
    ), budget


class TestSearch:
    def test_subgraph_respects_size_budget(self, example1_graph, example1_query):
        reducer, budget = make_reducer(example1_graph, example1_query, "Michael", alpha=0.5)
        result = reducer.search()
        assert result.subgraph.size() <= budget.size_limit
        assert result.budget.within_size_bound

    def test_result_is_subgraph_of_host(self, example1_graph, example1_query):
        reducer, _ = make_reducer(example1_graph, example1_query, "Michael", alpha=0.9)
        result = reducer.search()
        assert is_subgraph(result.subgraph, example1_graph)

    def test_contains_personalized_match(self, example1_graph, example1_query):
        reducer, _ = make_reducer(example1_graph, example1_query, "Michael", alpha=0.9)
        assert "Michael" in reducer.search().subgraph

    def test_excludes_guard_failures(self, example1_graph, example1_query):
        reducer, _ = make_reducer(example1_graph, example1_query, "Michael", alpha=0.9)
        subgraph = reducer.search().subgraph
        assert "cc2" not in subgraph  # no CL child
        assert "cl2" not in subgraph  # no parents

    def test_captures_the_match_region(self, example1_graph, example1_query):
        reducer, _ = make_reducer(example1_graph, example1_query, "Michael", alpha=0.9)
        subgraph = reducer.search().subgraph
        for node in ("cc1", "cc3", "hg3", "cl3", "cl4"):
            assert node in subgraph

    def test_missing_personalized_match_returns_empty(self, example1_graph, example1_query):
        reducer, _ = make_reducer(example1_graph, example1_query, "nobody", alpha=0.5)
        result = reducer.search()
        assert result.subgraph.size() == 0
        assert result.passes == 0

    def test_tiny_budget_still_bounded(self, example1_graph, example1_query):
        reducer, budget = make_reducer(example1_graph, example1_query, "Michael", alpha=0.1)
        result = reducer.search()
        assert result.subgraph.size() <= budget.size_limit

    def test_bound_grows_over_passes(self, example1_graph, example1_query):
        reducer, _ = make_reducer(
            example1_graph, example1_query, "Michael", alpha=0.9, initial_bound=1, max_passes=8
        )
        result = reducer.search()
        assert result.final_bound >= 1
        assert result.passes >= 1

    def test_candidate_counts_track_added_nodes(self, example1_graph, example1_query):
        reducer, _ = make_reducer(example1_graph, example1_query, "Michael", alpha=0.9)
        result = reducer.search()
        assert result.candidate_counts["Michael"] == 1
        assert sum(result.candidate_counts.values()) == result.subgraph.num_nodes()

    def test_depth_restriction_keeps_gq_in_ball(self, small_social_graph):
        from repro.graph.neighborhood import nodes_within_hops
        from repro.patterns.generator import embedded_pattern

        pattern, vp = embedded_pattern(small_social_graph, 4, 5, seed=3)
        reducer, _ = make_reducer(small_social_graph, pattern, vp, alpha=0.3)
        subgraph = reducer.search().subgraph
        ball_nodes = nodes_within_hops(small_social_graph, vp, pattern.diameter())
        assert set(subgraph.nodes()) <= ball_nodes

    def test_visit_accounting_is_positive(self, example1_graph, example1_query):
        reducer, budget = make_reducer(example1_graph, example1_query, "Michael", alpha=0.9)
        reducer.search()
        assert budget.visited > 0


class TestAblationModes:
    def test_fifo_mode_still_bounded(self, example1_graph, example1_query):
        reducer, budget = make_reducer(
            example1_graph, example1_query, "Michael", alpha=0.5, use_weights=False
        )
        result = reducer.search()
        assert result.subgraph.size() <= budget.size_limit
        assert "Michael" in result.subgraph

    def test_guardless_mode_admits_label_matches_only(self, example1_graph, example1_query):
        reducer, _ = make_reducer(
            example1_graph, example1_query, "Michael", alpha=0.9, use_guard=False
        )
        subgraph = reducer.search().subgraph
        # Without the guard, cc2 (a CC-labelled child of Michael) may enter GQ.
        assert "Michael" in subgraph
        for node in subgraph.nodes():
            assert example1_graph.label(node) in {"Michael", "HG", "CC", "CL"}
