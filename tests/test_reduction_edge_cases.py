"""Additional edge-case coverage for the dynamic reduction and its weights."""

import pytest

from repro.core.budget import ResourceBudget
from repro.core.rbsim import RBSim, RBSimConfig, rbsim
from repro.core.rbsub import RBSub, RBSubConfig
from repro.core.reduction import DynamicReducer
from repro.core.weights import IsomorphismGuard, SimulationGuard
from repro.graph.digraph import DiGraph
from repro.graph.generators import complete_bipartite_graph, star_graph
from repro.graph.neighborhood import NeighborhoodIndex
from repro.patterns.pattern import make_pattern


class TestDegenerateQueries:
    def test_single_edge_pattern_on_star(self):
        graph = star_graph(12)
        pattern = make_pattern({0: "HUB", 1: "LEAF"}, [(0, 1)], personalized=0, output=1)
        # The per-query-node bound b grows by one per pass, so finding all 12
        # leaves needs enough passes for b to reach the hub's fan-out, and a
        # budget large enough to hold the whole star (alpha = 1).
        answer = rbsim(pattern, graph, 0, alpha=1.0, config=RBSimConfig(max_passes=16))
        assert answer.answer == set(range(1, 13))
        # With the default pass cap the answer is a budget-bounded subset.
        capped = rbsim(pattern, graph, 0, alpha=0.9)
        assert capped.answer
        assert capped.answer <= answer.answer

    def test_single_edge_pattern_with_tiny_budget(self):
        graph = star_graph(12)
        pattern = make_pattern({0: "HUB", 1: "LEAF"}, [(0, 1)], personalized=0, output=1)
        answer = rbsim(pattern, graph, 0, alpha=0.2)  # budget of 5 items
        assert answer.answer  # some leaves found
        assert answer.answer < set(range(1, 13))  # but not all: budget binds
        assert answer.subgraph_size <= max(1, int(0.2 * graph.size()))

    def test_pattern_label_absent_from_graph(self):
        graph = star_graph(5)
        pattern = make_pattern({0: "HUB", 1: "GHOST"}, [(0, 1)], personalized=0, output=1)
        answer = rbsim(pattern, graph, 0, alpha=0.9)
        assert answer.answer == set()
        # Only the personalized node itself can enter G_Q.
        assert answer.subgraph.num_nodes() <= 1

    def test_backward_query_edge(self):
        # Query: output node is a *parent* of the personalized node.
        graph = DiGraph()
        graph.add_node("boss", "B")
        graph.add_node("me", "M")
        graph.add_node("other", "B")
        graph.add_edge("boss", "me")
        graph.add_edge("other", "boss")
        pattern = make_pattern({"m": "M", "b": "B"}, [("b", "m")], personalized="m", output="b")
        answer = rbsim(pattern, graph, "me", alpha=0.9)
        assert answer.answer == {"boss"}

    def test_dense_bipartite_respects_budget(self):
        graph = complete_bipartite_graph(6, 6)
        pattern = make_pattern({0: "L", 1: "R"}, [(0, 1)], personalized=0, output=1)
        alpha = 0.25
        answer = rbsim(pattern, graph, ("l", 0), alpha=alpha)
        assert answer.subgraph_size <= max(1, int(alpha * graph.size()))
        assert answer.answer <= {("r", index) for index in range(6)}


class TestReducerConfiguration:
    def test_max_passes_one_still_returns_subgraph(self, example1_graph, example1_query):
        index = NeighborhoodIndex(example1_graph)
        guard = SimulationGuard(example1_query, example1_graph, "Michael", index)
        budget = ResourceBudget(alpha=0.9, graph_size=example1_graph.size(), visit_coefficient=10)
        reducer = DynamicReducer(
            example1_query, example1_graph, "Michael", guard, budget,
            neighborhood_index=index, max_passes=1,
        )
        result = reducer.search()
        assert result.passes == 1
        assert "Michael" in result.subgraph

    def test_max_depth_zero_limits_to_personalized_node(self, example1_graph, example1_query):
        index = NeighborhoodIndex(example1_graph)
        guard = SimulationGuard(example1_query, example1_graph, "Michael", index)
        budget = ResourceBudget(alpha=0.9, graph_size=example1_graph.size(), visit_coefficient=10)
        reducer = DynamicReducer(
            example1_query, example1_graph, "Michael", guard, budget,
            neighborhood_index=index, max_depth=0,
        )
        result = reducer.search()
        assert set(result.subgraph.nodes()) == {"Michael"}

    def test_rbsim_config_is_frozen(self):
        config = RBSimConfig()
        with pytest.raises(Exception):
            config.max_passes = 99  # type: ignore[misc]

    def test_rbsub_config_inherits_rbsim_fields(self):
        config = RBSubConfig(initial_bound=3, max_embeddings=10)
        assert config.initial_bound == 3
        assert config.max_embeddings == 10

    def test_isomorphism_guard_on_star_center(self):
        graph = star_graph(4)
        pattern = make_pattern({0: "HUB", 1: "LEAF", 2: "LEAF"}, [(0, 1), (0, 2)], personalized=0, output=1)
        guard = IsomorphismGuard(pattern, graph, 0, NeighborhoodIndex(graph))
        assert guard.check(0, 0)
        assert not guard.check(1, 0)  # a leaf cannot host the hub query node

    def test_matchers_reusable_across_queries(self, example1_graph, example1_query):
        sim = RBSim(example1_graph, alpha=0.9)
        sub = RBSub(example1_graph, alpha=0.9)
        first = sim.answer(example1_query, "Michael").answer
        second = sim.answer(example1_query, "Michael").answer
        assert first == second == {"cl3", "cl4"}
        assert sub.answer(example1_query, "Michael").answer == {"cl3", "cl4"}
