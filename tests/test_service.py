"""Property tests for the ``GraphService`` façade (``repro.service``).

The contracts under test:

* **planner parity** — for every routing decision (serial / parallel /
  sharded, every executor, forced or auto), ``GraphService`` answers are
  bit-identical to the serial ``QueryEngine``, including across
  ``update(delta)`` calls;
* **pure planner** — routing decisions are a deterministic function of
  ``(batch size, graph size, cores, config)`` and carry a reason;
* **one config surface** — ``ServiceConfig`` validates every knob, the
  shared argparse parent produces uniform ``--alpha/--executor/--workers``
  flags, and the curated exports plus deprecation shims behave as
  documented.
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.engine import QueryEngine, ReachQuery
from repro.exceptions import ServiceError
from repro.graph.digraph import DiGraph
from repro.service import (
    CONTAIN,
    GraphService,
    PARALLEL,
    PATCH,
    PatternRequest,
    Planner,
    REBUILD,
    ReachRequest,
    SCATTER,
    SERIAL,
    SHARDED,
    ServiceConfig,
    as_request,
    config_from_args,
    service_flag_parent,
)
from repro.service.reporting import answers_identical
from repro.updates.delta import GraphDelta
from repro.workloads.deltas import generate_delta_stream
from repro.workloads.queries import generate_pattern_workload, sample_mixed_pairs

ALPHA = 0.1
EXECUTORS = ("serial", "thread", "process")


def clustered_graph(clusters=3, size=50, chords=2, bridges=3, seed=1) -> DiGraph:
    """Ring-of-chords clusters joined by a few bridges (see tests/test_shard.py)."""
    rng = random.Random(seed)
    graph = DiGraph()
    for cluster in range(clusters):
        for i in range(size):
            graph.add_node(cluster * size + i, rng.choice("ABCDE"))
    for cluster in range(clusters):
        base = cluster * size
        for i in range(size):
            graph.add_edge(base + i, base + (i + 1) % size)
            graph.add_edge(base + (i + 1) % size, base + i)
        for _ in range(chords * size // 4):
            left, right = rng.randrange(size), rng.randrange(size)
            if left != right:
                graph.add_edge(base + left, base + right)
    for cluster in range(clusters):
        other = (cluster + 1) % clusters
        for _ in range(bridges):
            graph.add_edge(
                cluster * size + rng.randrange(size), other * size + rng.randrange(size)
            )
    return graph


def signature(answer):
    """Field-for-field identity of one answer, either query class."""
    if hasattr(answer, "reachable"):
        return ("reach", answer.reachable, answer.visited, answer.met_at, answer.exhausted)
    return (
        "pattern",
        frozenset(answer.answer),
        tuple(answer.subgraph.nodes()) if answer.subgraph is not None else (),
        answer.subgraph_size,
    )


@pytest.fixture(scope="module")
def graph():
    return clustered_graph()


@pytest.fixture(scope="module")
def mixed_requests(graph):
    reach = [ReachRequest(s, t) for s, t in sample_mixed_pairs(graph, 40, seed=3)]
    workload = generate_pattern_workload(graph, shape=(3, 4), count=6, seed=11)
    patterns = [PatternRequest(q.pattern, q.personalized_match) for q in workload]
    subgraphs = [
        PatternRequest(q.pattern, q.personalized_match, semantics="subgraph")
        for q in workload
    ]
    return reach + patterns + subgraphs


@pytest.fixture(scope="module")
def serial_reference(graph, mixed_requests):
    engine = QueryEngine(graph, cache_size=0)
    answers = engine.run_batch([r.to_query() for r in mixed_requests], ALPHA).answers
    return [signature(a) for a in answers]


# --------------------------------------------------------------------------- #
# Config
# --------------------------------------------------------------------------- #
class TestServiceConfig:
    def test_defaults_validate(self):
        config = ServiceConfig()
        assert config.executor == "auto"
        assert config.num_shards == 1
        assert config.shard_policy == CONTAIN

    @pytest.mark.parametrize(
        "overrides",
        [
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"executor": "gpu"},
            {"workers": 0},
            {"num_shards": 0},
            {"shard_method": "metis"},
            {"halo_depth": 0},
            {"shard_policy": "broadcast"},
            {"cache_size": -1},
            {"patch_threshold": 2.0},
            {"max_inflight": 0},
            {"client_alpha_budget": 0.0},
            {"stream_chunk_size": 0},
        ],
    )
    def test_rejects_bad_values(self, overrides):
        with pytest.raises(ServiceError):
            ServiceConfig(**overrides)

    def test_with_overrides_revalidates(self):
        config = ServiceConfig()
        assert config.with_overrides(alpha=0.5).alpha == 0.5
        with pytest.raises(ServiceError):
            config.with_overrides(alpha=-1)

    def test_flag_parent_uniform_defaults(self):
        import argparse

        parser = argparse.ArgumentParser(parents=[service_flag_parent()])
        args = parser.parse_args([])
        assert args.alpha is None  # "not given": ServiceConfig default applies
        assert args.executor == "auto"
        assert args.workers is None
        config = config_from_args(args)
        assert config.alpha == ServiceConfig.alpha
        assert config.executor == "auto"

    def test_flag_parent_validates(self, capsys):
        import argparse

        parser = argparse.ArgumentParser(parents=[service_flag_parent()])
        for bad in (["--alpha", "0"], ["--alpha", "nope"], ["--workers", "0"],
                    ["--executor", "gpu"]):
            with pytest.raises(SystemExit):
                parser.parse_args(bad)
        capsys.readouterr()

    def test_config_from_args_folds_flags(self):
        import argparse

        parser = argparse.ArgumentParser(parents=[service_flag_parent()])
        parser.add_argument("--seed", type=int, default=0)
        args = parser.parse_args(["--alpha", "0.3", "--executor", "thread", "--workers", "2"])
        config = config_from_args(args, num_shards=2)
        assert (config.alpha, config.executor, config.workers) == (0.3, "thread", 2)
        assert config.num_shards == 2


# --------------------------------------------------------------------------- #
# Planner (pure routing decisions across the size × cores × config matrix)
# --------------------------------------------------------------------------- #
class TestPlanner:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_forced_executor_always_wins(self, executor):
        planner = Planner(ServiceConfig(executor=executor, workers=3))
        for num_queries in (1, 10, 10_000):
            for cores in (1, 2, 16):
                plan = planner.plan_batch(num_queries, graph_size=10**6, cores=cores)
                assert plan.executor == executor
                assert "forced" in plan.reason
                expected = SERIAL if executor == "serial" else PARALLEL
                assert plan.backend == expected

    def test_auto_single_core_stays_serial(self):
        plan = Planner(ServiceConfig()).plan_batch(10_000, graph_size=10**6, cores=1)
        assert (plan.backend, plan.executor) == (SERIAL, "serial")

    def test_auto_small_graph_stays_serial(self):
        planner = Planner(ServiceConfig(small_graph_size=512))
        plan = planner.plan_batch(10_000, graph_size=511, cores=8)
        assert plan.backend == SERIAL
        assert "small_graph_size" in plan.reason

    def test_auto_small_batch_stays_serial(self):
        planner = Planner(ServiceConfig(parallel_threshold=256))
        plan = planner.plan_batch(255, graph_size=10**6, cores=8)
        assert plan.backend == SERIAL
        assert "parallel_threshold" in plan.reason

    def test_auto_large_batch_goes_parallel(self):
        planner = Planner(ServiceConfig())
        plan = planner.plan_batch(256, graph_size=10**6, cores=8)
        assert (plan.backend, plan.executor) == (PARALLEL, "daemon")
        assert plan.workers == 8
        assert plan.parallel

    def test_auto_without_daemons_uses_process_pool(self):
        planner = Planner(ServiceConfig(use_daemons=False))
        plan = planner.plan_batch(256, graph_size=10**6, cores=8)
        assert (plan.backend, plan.executor) == (PARALLEL, "process")

    def test_auto_respects_configured_worker_cap(self):
        planner = Planner(ServiceConfig(workers=2))
        plan = planner.plan_batch(10_000, graph_size=10**6, cores=8)
        assert plan.workers == 2

    def test_sharded_backend_when_shards_configured(self):
        planner = Planner(ServiceConfig(num_shards=4))
        for cores in (1, 8):
            plan = planner.plan_batch(10, graph_size=10**6, cores=cores)
            assert plan.backend == SHARDED

    def test_scatter_policy_forces_sharded_even_at_k1(self):
        planner = Planner(ServiceConfig(num_shards=1, shard_policy=SCATTER))
        assert planner.plan_batch(10, graph_size=10**6, cores=1).backend == SHARDED

    def test_decisions_are_deterministic(self):
        planner = Planner(ServiceConfig())
        matrix = [
            (queries, size, cores)
            for queries in (1, 255, 256, 5000)
            for size in (100, 511, 512, 10**6)
            for cores in (1, 2, 8)
        ]
        first = [planner.plan_batch(*cell) for cell in matrix]
        second = [planner.plan_batch(*cell) for cell in matrix]
        assert first == second

    def test_update_plan_patch_within_budget(self):
        planner = Planner(ServiceConfig(patch_threshold=0.05))
        plan = planner.plan_update(delta_ops=10, graph_size=1000, has_node_removals=False)
        assert plan.action == PATCH
        assert plan.patch_threshold == 0.05

    def test_update_plan_rebuild_on_removals(self):
        plan = Planner(ServiceConfig()).plan_update(1, 1000, has_node_removals=True)
        assert plan.action == REBUILD
        assert plan.patch_threshold == 0.0

    def test_update_plan_rebuild_on_oversized_delta(self):
        planner = Planner(ServiceConfig(patch_threshold=0.05))
        plan = planner.plan_update(delta_ops=51, graph_size=1000, has_node_removals=False)
        assert plan.action == REBUILD


# --------------------------------------------------------------------------- #
# The parity contract: every routing decision is bit-identical to serial
# --------------------------------------------------------------------------- #
class TestPlannerParityContract:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_forced_executors_bit_identical(
        self, graph, mixed_requests, serial_reference, executor
    ):
        service = GraphService(
            graph, ServiceConfig(executor=executor, workers=2, cache_size=0)
        )
        report = service.run_batch(mixed_requests, alpha=ALPHA)
        assert [signature(a) for a in report.answers] == serial_reference

    def test_auto_plan_bit_identical(self, graph, mixed_requests, serial_reference):
        service = GraphService(graph, ServiceConfig(cache_size=0))
        report = service.run_batch(mixed_requests, alpha=ALPHA)
        assert [signature(a) for a in report.answers] == serial_reference

    @pytest.mark.parametrize("k", (2, 3))
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_sharded_contain_policy_bit_identical(
        self, graph, mixed_requests, serial_reference, k, executor
    ):
        service = GraphService(
            graph,
            ServiceConfig(executor=executor, workers=2, cache_size=0, num_shards=k),
        )
        report = service.run_batch(mixed_requests, alpha=ALPHA)
        assert report.plan.backend == SHARDED
        assert [signature(a) for a in report.answers] == serial_reference

    def test_contain_policy_actually_routes_to_shards(self, graph, mixed_requests):
        # The parity test above would hold vacuously if nothing ever reached
        # the shard engines; the clustered fixture must exercise them.
        service = GraphService(graph, ServiceConfig(cache_size=0, num_shards=2))
        report = service.run_batch(mixed_requests, alpha=ALPHA)
        assert report.shard_routed > 0
        assert report.shard_single > 0
        stats = service.stats()
        assert stats.shard_contained == report.shard_routed
        assert stats.shard_spilled == report.shard_single

    def test_cached_rerun_stays_bit_identical(self, graph, mixed_requests, serial_reference):
        service = GraphService(graph, ServiceConfig(cache_size=4096))
        cold = service.run_batch(mixed_requests, alpha=ALPHA)
        warm = service.run_batch(mixed_requests, alpha=ALPHA)
        assert warm.cache_hits == len(mixed_requests)
        for report in (cold, warm):
            assert [signature(a) for a in report.answers] == serial_reference

    def test_mixed_alpha_batch_matches_per_alpha_serial_runs(self, graph):
        pairs = sample_mixed_pairs(graph, 20, seed=5)
        requests = [
            ReachRequest(s, t, alpha=(0.05 if i % 2 else 0.2))
            for i, (s, t) in enumerate(pairs)
        ]
        service = GraphService(graph, ServiceConfig(cache_size=0))
        answers = service.run_batch(requests).answers
        engine = QueryEngine(graph, cache_size=0)
        for request, answer in zip(requests, answers):
            expected = engine.run_batch([request.to_query()], request.alpha).answers[0]
            assert signature(answer) == signature(expected)

    @pytest.mark.parametrize("executor", ("serial", "thread"))
    def test_parity_across_updates(self, executor):
        base = clustered_graph(clusters=2, size=40, seed=5)
        requests = [ReachRequest(s, t) for s, t in sample_mixed_pairs(base, 30, seed=7)]
        service = GraphService(
            base.copy(), ServiceConfig(executor=executor, workers=2, cache_size=64)
        )
        stream = generate_delta_stream(base, batches=3, ops_per_batch=12, seed=9)
        for delta in stream:
            report = service.update(delta)
            assert report.plan.action in (PATCH, REBUILD)
            got = service.run_batch(requests, alpha=ALPHA).answers
            fresh = QueryEngine(service.graph, mirror="never", cache_size=0)
            expected = fresh.run_batch([r.to_query() for r in requests], ALPHA).answers
            assert answers_identical("reach", got, expected)

    def test_forced_rebuild_plan_stays_bit_identical(self):
        base = clustered_graph(clusters=2, size=30, seed=6)
        requests = [ReachRequest(s, t) for s, t in sample_mixed_pairs(base, 20, seed=8)]
        # patch_threshold=0 plans every delta as a rebuild.
        service = GraphService(base.copy(), ServiceConfig(patch_threshold=0.0))
        delta = next(iter(generate_delta_stream(base, batches=1, ops_per_batch=10, seed=3)))
        report = service.update(delta)
        assert report.plan.action == REBUILD
        assert report.mode in ("rebuilt", "fresh")
        got = service.run_batch(requests, alpha=ALPHA).answers
        fresh = QueryEngine(service.graph, mirror="never", cache_size=0)
        expected = fresh.run_batch([r.to_query() for r in requests], ALPHA).answers
        assert answers_identical("reach", got, expected)

    def test_update_before_lazy_shard_build_partitions_updated_graph(self):
        # A delta absorbed before the first sharded batch must not strand
        # the sharded engine on the stale construction-time source.
        base = clustered_graph(clusters=2, size=40, seed=5)
        requests = [ReachRequest(s, t) for s, t in sample_mixed_pairs(base, 20, seed=7)]
        workload = generate_pattern_workload(base, shape=(3, 4), count=4, seed=11)
        requests += [PatternRequest(q.pattern, q.personalized_match) for q in workload]
        service = GraphService(base.copy(), ServiceConfig(num_shards=2, cache_size=0))
        delta = next(iter(generate_delta_stream(base, batches=1, ops_per_batch=10, seed=4)))
        report = service.update(delta)
        assert report.shard_report is None  # nothing to route to yet
        got = service.run_batch(requests, alpha=ALPHA)  # builds shards now
        fresh = QueryEngine(service.graph, mirror="never", cache_size=0)
        expected = fresh.run_batch([r.to_query() for r in requests], ALPHA).answers
        assert [signature(a) for a in got.answers] == [signature(a) for a in expected]
        assert got.shard_routed > 0

    def test_sharded_service_updates_stay_bit_identical(self):
        base = clustered_graph(clusters=2, size=40, seed=5)
        workload = generate_pattern_workload(base, shape=(3, 4), count=4, seed=11)
        requests = [ReachRequest(s, t) for s, t in sample_mixed_pairs(base, 20, seed=7)]
        requests += [PatternRequest(q.pattern, q.personalized_match) for q in workload]
        service = GraphService(base.copy(), ServiceConfig(num_shards=2, cache_size=0))
        service.run_batch(requests, alpha=ALPHA)  # builds the sharded engine
        delta = next(iter(generate_delta_stream(base, batches=1, ops_per_batch=10, seed=4)))
        report = service.update(delta)
        assert report.shard_report is not None
        got = service.run_batch(requests, alpha=ALPHA).answers
        fresh = QueryEngine(service.graph, mirror="never", cache_size=0)
        expected = fresh.run_batch([r.to_query() for r in requests], ALPHA).answers
        assert [signature(a) for a in got] == [signature(a) for a in expected]


# --------------------------------------------------------------------------- #
# Scatter policy (the explicit opt-out: PR 4 semantics, not bit-parity)
# --------------------------------------------------------------------------- #
class TestScatterPolicy:
    def test_scatter_routes_everything_to_shards(self, graph, mixed_requests):
        service = GraphService(
            graph, ServiceConfig(num_shards=2, shard_policy=SCATTER, cache_size=0)
        )
        report = service.run_batch(mixed_requests, alpha=ALPHA)
        assert report.shard_routed == len(mixed_requests)
        assert report.shard_single == 0
        assert sum(report.per_shard.values()) > 0

    def test_scatter_never_false_positive(self, graph):
        from repro.graph.traversal import is_reachable

        pairs = sample_mixed_pairs(graph, 40, seed=13)
        service = GraphService(
            graph, ServiceConfig(num_shards=3, shard_policy=SCATTER, cache_size=0)
        )
        answers = service.run_batch(
            [ReachRequest(s, t) for s, t in pairs], alpha=ALPHA
        ).answers
        for (source, target), answer in zip(pairs, answers):
            if answer.reachable:
                assert is_reachable(graph, source, target)

    def test_scatter_k1_bit_identical(self, graph, mixed_requests, serial_reference):
        service = GraphService(
            graph, ServiceConfig(num_shards=1, shard_policy=SCATTER, cache_size=0)
        )
        report = service.run_batch(mixed_requests, alpha=ALPHA)
        assert report.plan.backend == SHARDED
        assert [signature(a) for a in report.answers] == serial_reference


# --------------------------------------------------------------------------- #
# Lifecycle, stats, request coercion
# --------------------------------------------------------------------------- #
class TestServiceLifecycle:
    def test_open_prepare_query_close(self):
        with GraphService.open("youtube-small", ServiceConfig(alpha=0.05)) as service:
            service.prepare()
            answer = service.query((1, 2))
            assert answer.backend == SERIAL
            assert answer.alpha == 0.05
            assert answer.index == 0
        assert service.closed
        with pytest.raises(ServiceError):
            service.run_batch([ReachRequest(1, 2)])

    def test_close_is_idempotent(self, graph):
        service = GraphService(graph)
        service.close()
        service.close()

    def test_request_coercion(self, graph):
        service = GraphService(graph, ServiceConfig(cache_size=0))
        report = service.run_batch([(0, 1), ReachQuery(0, 2), ReachRequest(0, 3)], alpha=ALPHA)
        assert len(report.answers) == 3
        with pytest.raises(ServiceError):
            as_request("not a request")

    def test_detailed_envelopes_carry_provenance(self, graph):
        service = GraphService(graph, ServiceConfig(cache_size=0))
        report = service.run_batch([ReachRequest(0, 1), ReachRequest(0, 2)], alpha=ALPHA)
        detailed = report.detailed()
        assert [a.index for a in detailed] == [0, 1]
        assert all(a.backend == report.plan.backend for a in detailed)
        assert all(a.alpha == ALPHA for a in detailed)
        assert [a.value for a in detailed] == report.answers

    def test_stats_accumulate(self, graph):
        service = GraphService(graph, ServiceConfig(cache_size=0))
        service.run_batch([ReachRequest(0, 1)], alpha=ALPHA)
        service.run_batch([ReachRequest(0, 2)], alpha=ALPHA)
        stats = service.stats()
        assert stats.batches == 2
        assert stats.queries == 2
        assert stats.plans.get(SERIAL) == 2
        assert stats.kinds.get("reach") == 2
        # The snapshot is independent of later mutation.
        service.run_batch([ReachRequest(0, 3)], alpha=ALPHA)
        assert stats.batches == 2

    def test_update_requires_delta(self, graph):
        service = GraphService(graph)
        with pytest.raises(ServiceError):
            service.update("not a delta")

    def test_update_stats_and_modes(self):
        base = clustered_graph(clusters=2, size=30, seed=2)
        service = GraphService(base.copy())
        delta = GraphDelta()
        delta.add_edge(0, 2)
        service.prepare()
        service.update(delta)
        stats = service.stats()
        assert stats.updates == 1
        assert sum(stats.update_modes.values()) == 1

    def test_shard_profile(self, graph):
        service = GraphService(graph, ServiceConfig(num_shards=2))
        profile = service.shard_profile()
        assert profile["num_shards"] == 2
        assert sum(profile["shard_nodes"]) == graph.num_nodes()

    def test_engine_property_is_the_single_construction_site(self, graph):
        service = GraphService(graph)
        assert service.engine is service.engine
        assert service.backend in ("CSRGraph", "DiGraph")

    def test_graph_tracks_updates(self):
        base = clustered_graph(clusters=2, size=30, seed=2)
        nodes_before = base.num_nodes()
        service = GraphService(base.copy())
        service.prepare()
        delta = GraphDelta()
        delta.add_node("newcomer", "A")
        delta.add_edge(0, "newcomer")
        service.update(delta)
        assert service.graph.num_nodes() == nodes_before + 1


# --------------------------------------------------------------------------- #
# Deprecation shims
# --------------------------------------------------------------------------- #
class TestDeprecationShims:
    # The PR 5 lazy top-level aliases (ShardedEngine, Partition,
    # partition_graph) are gone after their one-release window; removal is
    # pinned in tests/test_public_api.py.  What stays pinned here: the
    # low-level imports they pointed at remain clean and warning-free.

    def test_low_level_imports_stay_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.shard import ShardedEngine  # noqa: F401
            from repro.engine import QueryEngine  # noqa: F401

    def test_unknown_attribute_still_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.no_such_name
