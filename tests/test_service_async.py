"""The asyncio front-end: streaming parity, cancellation, admission control.

Covers the contract of ``GraphService.submit`` / ``GraphService.stream``:

* a stream yields **exactly the batch answer set** — same indices, same
  bit-identical values as the synchronous batch — regardless of completion
  order;
* cancelling a stream mid-flight releases its admission and leaves the
  service fully reusable;
* admission control actually bounds in-flight work (global ``max_inflight``
  and the per-client α budget), applying backpressure instead of rejecting.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.engine import QueryEngine
from repro.service import GraphService, ReachRequest, ServiceConfig
from repro.service.aio import AdmissionController
from repro.service.reporting import answers_identical
from repro.workloads.queries import sample_mixed_pairs

from tests.test_service import clustered_graph

ALPHA = 0.1


@pytest.fixture(scope="module")
def graph():
    return clustered_graph(clusters=2, size=50, seed=21)


@pytest.fixture(scope="module")
def requests(graph):
    return [ReachRequest(s, t) for s, t in sample_mixed_pairs(graph, 40, seed=5)]


@pytest.fixture(scope="module")
def reference(graph, requests):
    engine = QueryEngine(graph, cache_size=0)
    return engine.run_batch([r.to_query() for r in requests], ALPHA).answers


class TestSubmit:
    def test_submit_matches_sync_answer(self, graph, requests, reference):
        service = GraphService(graph, ServiceConfig(cache_size=0))

        async def main():
            return await service.submit(requests[0], alpha=ALPHA)

        answer = asyncio.run(main())
        assert answers_identical("reach", [answer.value], [reference[0]])
        assert answer.index == 0
        assert answer.alpha == ALPHA
        assert service.stats().submitted == 1

    def test_concurrent_submits_all_answer(self, graph, requests, reference):
        service = GraphService(graph, ServiceConfig(cache_size=0, max_inflight=4))

        async def main():
            return await asyncio.gather(
                *(service.submit(request, alpha=ALPHA) for request in requests)
            )

        answers = asyncio.run(main())
        assert answers_identical("reach", [a.value for a in answers], reference)
        stats = service.stats()
        assert stats.submitted == len(requests)
        assert stats.max_inflight <= 4

    def test_service_usable_across_event_loops(self, graph, requests):
        service = GraphService(graph, ServiceConfig(cache_size=0))
        for _ in range(2):  # each asyncio.run is a fresh loop
            answer = asyncio.run(service.submit(requests[0], alpha=ALPHA))
            assert answer.value is not None


class TestStream:
    def test_stream_yields_exactly_the_batch_answer_set(self, graph, requests, reference):
        service = GraphService(graph, ServiceConfig(cache_size=0, stream_chunk_size=7))

        async def main():
            collected = []
            async for answer in service.stream(requests, alpha=ALPHA):
                collected.append(answer)
            return collected

        collected = asyncio.run(main())
        assert sorted(a.index for a in collected) == list(range(len(requests)))
        by_index = sorted(collected, key=lambda a: a.index)
        assert answers_identical("reach", [a.value for a in by_index], reference)
        assert service.stats().streamed == len(requests)

    @staticmethod
    async def _collect(service, requests):
        return [a async for a in service.stream(requests, alpha=ALPHA)]

    def test_stream_parity_for_every_chunk_size(self, graph, requests, reference):
        for chunk_size in (1, 3, len(requests), len(requests) * 2):
            service = GraphService(
                graph, ServiceConfig(cache_size=0, stream_chunk_size=chunk_size)
            )
            collected = sorted(
                asyncio.run(self._collect(service, requests)), key=lambda a: a.index
            )
            assert answers_identical("reach", [a.value for a in collected], reference), (
                f"stream diverged at chunk_size={chunk_size}"
            )

    def test_cancellation_mid_stream_leaves_service_reusable(
        self, graph, requests, reference
    ):
        service = GraphService(graph, ServiceConfig(cache_size=0, stream_chunk_size=4))

        async def interrupted():
            stream = service.stream(requests, alpha=ALPHA)
            collected = []
            async for answer in stream:
                collected.append(answer)
                if len(collected) >= 3:
                    break
            await stream.aclose()
            return collected

        partial = asyncio.run(interrupted())
        assert len(partial) == 3

        # The service must be fully reusable: admission released, worker
        # thread healthy, answers still bit-identical — sync and async.
        sync = service.run_batch(requests, alpha=ALPHA)
        assert answers_identical("reach", sync.answers, reference)

        async def full():
            return [a async for a in service.stream(requests, alpha=ALPHA)]

        collected = sorted(asyncio.run(full()), key=lambda a: a.index)
        assert answers_identical("reach", [a.value for a in collected], reference)
        assert service._frontend.admission.inflight == 0

    def test_cancelled_task_mid_gather_releases_admission(self, graph, requests):
        service = GraphService(graph, ServiceConfig(cache_size=0, max_inflight=2))

        async def main():
            tasks = [
                asyncio.ensure_future(service.submit(request, alpha=ALPHA))
                for request in requests[:6]
            ]
            await asyncio.sleep(0)
            for task in tasks[3:]:
                task.cancel()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            return results

        results = asyncio.run(main())
        assert any(isinstance(r, asyncio.CancelledError) for r in results)
        assert service._frontend.admission.inflight == 0
        # And the service still answers.
        answer = asyncio.run(service.submit(requests[0], alpha=ALPHA))
        assert answer.value is not None


class TestAdmissionControl:
    def test_backpressure_bounds_inflight(self, graph, requests):
        service = GraphService(
            graph, ServiceConfig(cache_size=0, max_inflight=4, stream_chunk_size=4)
        )

        async def main():
            return [a async for a in service.stream(requests, alpha=ALPHA)]

        collected = asyncio.run(main())
        assert len(collected) == len(requests)
        stats = service.stats()
        assert 0 < stats.max_inflight <= 4
        assert stats.admission_waits > 0  # later chunks actually waited

    def test_controller_blocks_past_max_inflight(self):
        async def main():
            controller = AdmissionController(max_inflight=2, client_budget=10.0)
            await controller.acquire({"a": (2, 0.2)})
            waiter = asyncio.ensure_future(controller.acquire({"b": (1, 0.1)}))
            await asyncio.sleep(0.01)
            assert not waiter.done()  # blocked: 2 + 1 > 2
            assert controller.waits == 1
            await controller.release({"a": (2, 0.2)})
            await asyncio.wait_for(waiter, timeout=1)
            assert controller.inflight == 1
            await controller.release({"b": (1, 0.1)})
            assert controller.inflight == 0
            assert controller.max_seen == 2

        asyncio.run(main())

    def test_controller_enforces_per_client_alpha_budget(self):
        async def main():
            controller = AdmissionController(max_inflight=100, client_budget=0.05)
            await controller.acquire({"alice": (1, 0.04)})
            blocked = asyncio.ensure_future(controller.acquire({"alice": (1, 0.04)}))
            other = asyncio.ensure_future(controller.acquire({"bob": (1, 0.04)}))
            await asyncio.sleep(0.01)
            assert other.done()  # bob is under his own budget
            assert not blocked.done()  # alice is over hers
            await controller.release({"alice": (1, 0.04)})
            await asyncio.wait_for(blocked, timeout=1)
            await controller.release({"alice": (1, 0.04)})
            await controller.release({"bob": (1, 0.04)})
            assert controller.inflight == 0

        asyncio.run(main())

    def test_oversized_charge_admitted_alone(self):
        async def main():
            controller = AdmissionController(max_inflight=4, client_budget=0.1)
            # A chunk larger than the whole bound must not deadlock: it is
            # admitted once nothing else is in flight.
            await asyncio.wait_for(controller.acquire({"a": (10, 1.0)}), timeout=1)
            assert controller.inflight == 10
            follower = asyncio.ensure_future(controller.acquire({"b": (1, 0.01)}))
            await asyncio.sleep(0.01)
            assert not follower.done()
            await controller.release({"a": (10, 1.0)})
            await asyncio.wait_for(follower, timeout=1)
            await controller.release({"b": (1, 0.01)})

        asyncio.run(main())

    def test_per_client_budget_serialises_expensive_queries(self, graph, requests):
        # Two clients, each holding at most one 0.08-α query at a time.
        service = GraphService(
            graph, ServiceConfig(cache_size=0, max_inflight=100, client_alpha_budget=0.1)
        )
        tagged = [
            ReachRequest(r.source, r.target, alpha=0.08, client=f"c{i % 2}")
            for i, r in enumerate(requests[:8])
        ]

        async def main():
            return await asyncio.gather(*(service.submit(t) for t in tagged))

        answers = asyncio.run(main())
        assert len(answers) == 8
        stats = service.stats()
        assert stats.admission_waits > 0
        # At most one in-flight query per client at any instant.
        assert stats.max_inflight <= 2


class TestSubscriptionStream:
    def _toy_service(self):
        """0→1 and 2→3: adding 1→2 flips reach(0, 3) from False to True."""
        from repro.graph.digraph import DiGraph

        toy = DiGraph()
        for node in range(4):
            toy.add_node(node, "A")
        toy.add_edge(0, 1)
        toy.add_edge(2, 3)
        return GraphService(toy, ServiceConfig(alpha=ALPHA))

    def test_stream_pushes_snapshot_then_maintenance_delta(self):
        from repro.subscribe import INITIAL, UPDATE
        from repro.updates.delta import GraphDelta

        service = self._toy_service()

        async def main():
            stream = service.subscription_stream([ReachRequest(0, 3)])
            snapshot = await asyncio.wait_for(stream.__anext__(), timeout=5)
            assert snapshot.reason == INITIAL and snapshot.epoch == 0
            assert snapshot.new_value.reachable is False
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, service.update, GraphDelta().add_edge(1, 2)
            )
            change = await asyncio.wait_for(stream.__anext__(), timeout=5)
            assert change.reason == UPDATE and change.epoch == 1
            assert change.old_value.reachable is False
            assert change.new_value.reachable is True
            await stream.aclose()

        asyncio.run(main())
        assert service.subscriptions() == []
        assert service._frontend.admission.inflight == 0
        service.close()

    def test_cancellation_mid_update_releases_admission_and_deregisters(
        self, graph, requests, reference
    ):
        from repro.workloads.deltas import generate_delta_stream

        service = GraphService(graph, ServiceConfig(cache_size=0))
        deltas = list(
            generate_delta_stream(graph, batches=2, ops_per_batch=10, mix="uniform", seed=9)
        )

        async def main():
            received = []

            async def consume():
                async for delta in service.subscription_stream(
                    requests[:4], alpha=ALPHA
                ):
                    received.append(delta)

            task = asyncio.create_task(consume())
            # Wait for the epoch-0 snapshots: registration is complete and
            # the stream holds its admission charges.
            while len(received) < 4:
                await asyncio.sleep(0.01)
            assert service._frontend.admission.inflight == 4
            assert len(service.subscriptions()) == 4
            # Cancel while an update (and its maintenance pass) is running.
            loop = asyncio.get_running_loop()
            update = loop.run_in_executor(None, service.update, deltas[0])
            task.cancel()
            await asyncio.gather(task, update, return_exceptions=True)

        asyncio.run(main())
        # Admission charges released, table empty, service fully reusable.
        assert service._frontend.admission.inflight == 0
        assert service.subscriptions() == []
        service.update(deltas[1])
        sub = service.subscribe(requests[0], alpha=ALPHA)
        assert sub.value is not None
        answer = asyncio.run(service.submit(requests[1], alpha=ALPHA))
        assert answer.value is not None
        service.close()

    def test_standing_charges_count_against_the_client_budget(self, graph, requests):
        service = GraphService(graph, ServiceConfig(cache_size=0, max_inflight=3))

        async def main():
            stream = service.subscription_stream(requests[:3], alpha=ALPHA)
            for _ in range(3):
                await asyncio.wait_for(stream.__anext__(), timeout=5)
            # All three admission slots are held by standing queries: an
            # ad-hoc submit must wait until the stream closes.
            submit = asyncio.ensure_future(service.submit(requests[3], alpha=ALPHA))
            await asyncio.sleep(0.05)
            assert not submit.done()
            await stream.aclose()
            return await asyncio.wait_for(submit, timeout=5)

        answer = asyncio.run(main())
        assert answer.value is not None
        assert service._frontend.admission.inflight == 0
        service.close()
