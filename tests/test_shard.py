"""Property tests for the sharded serving layer (``repro.shard``).

The contract under test:

* **never a false positive** — a sharded reachability answer of ``True``
  always certifies a real path in the full graph, for every ``k``, every
  partitioner and every executor;
* **bit-identical when shard-contained** — whenever a query's ball stays
  inside its home shard's core (always at ``k = 1``), the sharded answer is
  field-for-field identical to the single-graph ``QueryEngine``'s, for every
  executor and worker count;
* **updates route to the owning shards** — confined churn takes the
  incremental per-shard path, wider churn rebuilds exactly the affected
  shards, and both preserve the two properties above.
"""

from __future__ import annotations

import random

import pytest

from repro.engine import PatternQuery, QueryEngine, ReachQuery
from repro.exceptions import ShardError
from repro.graph.digraph import DiGraph
from repro.graph.generators import preferential_attachment_graph
from repro.graph.traversal import is_reachable
from repro.shard import (
    Partition,
    ShardedEngine,
    build_shards,
    greedy_partition,
    hash_partition,
    hash_shard,
    partition_graph,
)
from repro.workloads.deltas import generate_delta_stream
from repro.workloads.queries import generate_pattern_workload, sample_mixed_pairs

ALPHA = 0.1
KS = (1, 2, 4)
EXECUTORS = ("serial", "thread", "process", "daemon")


def clustered_graph(clusters=4, size=60, chords=2, bridges=3, seed=1) -> DiGraph:
    """Ring-of-chords clusters joined by a few bridges.

    Low conductance and large intra-cluster diameter: the greedy partitioner
    aligns shards with clusters, halos stay thin, and small pattern balls
    fit inside one core — the workload shape sharding is built for.
    """
    rng = random.Random(seed)
    graph = DiGraph()
    for cluster in range(clusters):
        for i in range(size):
            graph.add_node(cluster * size + i, rng.choice("ABCDE"))
    for cluster in range(clusters):
        base = cluster * size
        for i in range(size):
            graph.add_edge(base + i, base + (i + 1) % size)
            graph.add_edge(base + (i + 1) % size, base + i)
        for _ in range(chords * size // 4):
            left, right = rng.randrange(size), rng.randrange(size)
            if left != right:
                graph.add_edge(base + left, base + right)
    for cluster in range(clusters):
        other = (cluster + 1) % clusters
        for _ in range(bridges):
            graph.add_edge(
                cluster * size + rng.randrange(size), other * size + rng.randrange(size)
            )
    return graph


def reach_signature(answers):
    return [(a.reachable, a.visited, a.met_at, a.exhausted) for a in answers]


def pattern_signature(answer):
    return (
        frozenset(answer.answer),
        tuple(answer.subgraph.nodes()) if answer.subgraph is not None else (),
        tuple(answer.subgraph.edges()) if answer.subgraph is not None else (),
        answer.subgraph_size,
    )


@pytest.fixture(scope="module")
def graph():
    return clustered_graph()


@pytest.fixture(scope="module")
def reach_queries(graph):
    return [ReachQuery(s, t) for s, t in sample_mixed_pairs(graph, 80, seed=3)]


@pytest.fixture(scope="module")
def baseline(graph, reach_queries):
    engine = QueryEngine(graph, cache_size=0)
    engine.prepare(reach_alphas=[ALPHA])
    return engine


@pytest.fixture(scope="module")
def sharded_engines(graph):
    engines = {k: ShardedEngine(graph, num_shards=k, seed=7) for k in KS}
    yield engines
    for engine in engines.values():
        engine.close()  # daemon pools + their shared segments


# --------------------------------------------------------------------------- #
# Partitioners
# --------------------------------------------------------------------------- #
class TestPartition:
    def test_every_node_assigned_once(self, graph):
        for method in ("hash", "greedy"):
            partition = partition_graph(graph, 4, method=method, seed=5)
            assert set(partition.assignment) == set(graph.nodes())
            assert sum(partition.shard_sizes()) == graph.num_nodes()
            assert all(0 <= shard < 4 for shard in partition.assignment.values())

    def test_same_seed_identical(self, graph):
        first = greedy_partition(graph, 4, seed=11)
        second = greedy_partition(graph, 4, seed=11)
        assert first.assignment == second.assignment
        assert first.boundary == second.boundary
        assert first.cut_edges == second.cut_edges

    def test_hash_partition_matches_hash_rule(self, graph):
        partition = hash_partition(graph, 4)
        for node in graph.nodes():
            assert partition.assignment[node] == hash_shard(node, 4)

    def test_greedy_beats_hash_on_clustered_graph(self, graph):
        greedy = greedy_partition(graph, 4, seed=7)
        hashed = hash_partition(graph, 4)
        assert greedy.cut_fraction() < hashed.cut_fraction()

    def test_cut_statistics_consistent(self, graph):
        partition = greedy_partition(graph, 4, seed=7)
        cut = sum(
            1
            for source, target in graph.edges()
            if partition.assignment[source] != partition.assignment[target]
        )
        assert partition.cut_edges == cut
        assert partition.total_edges == graph.num_edges()
        for shard, members in partition.boundary.items():
            for node in members:
                assert partition.assignment[node] == shard
                assert any(
                    partition.assignment[neighbor] != shard
                    for neighbor in graph.neighbors(node)
                )

    def test_single_shard_has_no_boundary(self, graph):
        partition = partition_graph(graph, 1)
        assert partition.cut_edges == 0
        assert all(not members for members in partition.boundary.values())

    def test_round_trip_through_json(self, graph):
        partition = greedy_partition(graph, 3, seed=2)
        loaded = Partition.from_json(partition.to_json())
        assert loaded.assignment == partition.assignment
        assert loaded.boundary == partition.boundary
        assert (loaded.num_shards, loaded.method, loaded.seed) == (3, "greedy", 2)
        assert (loaded.cut_edges, loaded.total_edges) == (
            partition.cut_edges,
            partition.total_edges,
        )

    def test_invalid_configurations(self, graph):
        with pytest.raises(ShardError):
            partition_graph(graph, 0)
        with pytest.raises(ShardError):
            partition_graph(graph, graph.num_nodes() + 1, method="greedy")
        with pytest.raises(ShardError):
            partition_graph(graph, 2, method="metis")
        with pytest.raises(ShardError):
            Partition.from_json("{not json")


# --------------------------------------------------------------------------- #
# Shard graphs
# --------------------------------------------------------------------------- #
class TestShardGraphs:
    def test_k1_reproduces_the_csr_mirror(self, graph):
        from repro.graph.csr import CSRGraph

        shards = build_shards(graph, partition_graph(graph, 1))
        shard = shards[0]
        mirror = CSRGraph.from_digraph(graph)
        assert list(shard.graph.nodes()) == list(mirror.nodes())
        assert list(shard.graph.edges()) == list(mirror.edges())
        assert shard.graph.labels() == mirror.labels()
        assert [shard.graph.degree(n) for n in graph.nodes()] == [
            mirror.degree(n) for n in graph.nodes()
        ]
        assert not shard.halo
        assert shard.core_size == graph.size()

    def test_core_adjacency_is_complete_and_ordered(self, graph):
        partition = partition_graph(graph, 4, seed=7)
        shards = build_shards(graph, partition)
        for shard in shards.values():
            for node in shard.core_list[:20]:
                assert list(shard.graph.successors(node)) == list(graph.successors(node))
                assert list(shard.graph.predecessors(node)) == list(graph.predecessors(node))
                assert shard.graph.degree(node) == graph.degree(node)
                assert shard.graph.label(node) == graph.label(node)

    def test_core_sizes_split_the_global_budget(self, graph):
        partition = partition_graph(graph, 4, seed=7)
        shards = build_shards(graph, partition)
        assert sum(shard.core_size for shard in shards.values()) == graph.size()

    def test_halo_is_within_depth(self, graph):
        partition = partition_graph(graph, 4, seed=7)
        shards = build_shards(graph, partition, halo_depth=2)
        for shard in shards.values():
            for node in list(shard.halo)[:20]:
                # within 2 undirected hops of some core node
                frontier = {node}
                found = False
                for _ in range(2):
                    frontier = {
                        neighbor
                        for current in frontier
                        for neighbor in graph.neighbors(current)
                    }
                    if frontier & shard.core:
                        found = True
                        break
                assert found

    def test_halo_depth_zero_rejected(self, graph):
        with pytest.raises(ShardError):
            build_shards(graph, partition_graph(graph, 2), halo_depth=0)


# --------------------------------------------------------------------------- #
# The parity contract
# --------------------------------------------------------------------------- #
class TestReachParity:
    @pytest.mark.parametrize("k", KS)
    def test_never_false_positive(self, graph, reach_queries, sharded_engines, k):
        answers = sharded_engines[k].answer_batch(reach_queries, ALPHA)
        for query, answer in zip(reach_queries, answers):
            if answer.reachable:
                assert is_reachable(graph, query.source, query.target), (
                    f"k={k}: sharded engine invented {query.source}->{query.target}"
                )

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_k1_bit_identical_to_unsharded(
        self, baseline, reach_queries, sharded_engines, executor
    ):
        expected = reach_signature(baseline.answer_batch(reach_queries, ALPHA))
        answers = sharded_engines[1].answer_batch(
            reach_queries, ALPHA, executor=executor, workers=2
        )
        assert reach_signature(answers) == expected

    @pytest.mark.parametrize("k", KS)
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_executor_parity(self, reach_queries, sharded_engines, k, executor):
        serial = reach_signature(sharded_engines[k].answer_batch(reach_queries, ALPHA))
        for workers in (1, 2):
            answers = sharded_engines[k].answer_batch(
                reach_queries, ALPHA, executor=executor, workers=workers
            )
            assert reach_signature(answers) == serial, (
                f"{executor}[{workers}] diverged from serial at k={k}"
            )

    def test_unknown_endpoints_answer_unreachable(self, graph, sharded_engines):
        queries = [ReachQuery("ghost", 0), ReachQuery(0, "ghost")]
        for k in KS:
            answers = sharded_engines[k].answer_batch(queries, ALPHA)
            assert [a.reachable for a in answers] == [False, False]

    def test_cross_shard_positive_is_found(self):
        # Two chains joined by one bridge; with full budgets the boundary
        # graph must compose the cross-shard path.
        graph = DiGraph()
        for i in range(8):
            graph.add_node(("a", i), "A")
            graph.add_node(("b", i), "B")
        for i in range(7):
            graph.add_edge(("a", i), ("a", i + 1))
            graph.add_edge(("b", i), ("b", i + 1))
        graph.add_edge(("a", 7), ("b", 0))
        assignment = {node: 0 if node[0] == "a" else 1 for node in graph.nodes()}
        partition = Partition(num_shards=2, method="manual", seed=0, assignment=assignment)
        from repro.shard.partition import refresh_partition_statistics

        refresh_partition_statistics(graph, partition)
        engine = ShardedEngine(graph, partition=partition)
        answers = engine.answer_batch(
            [ReachQuery(("a", 0), ("b", 7)), ReachQuery(("b", 0), ("a", 0))], 1.0
        )
        assert answers[0].reachable and answers[0].met_at is not None
        assert not answers[1].reachable


class TestPatternParity:
    @pytest.fixture(scope="class")
    def pattern_queries(self, graph):
        workload = generate_pattern_workload(graph, shape=(3, 4), count=8, seed=11)
        simulation = [PatternQuery(q.pattern, q.personalized_match) for q in workload]
        subgraph = [
            PatternQuery(q.pattern, q.personalized_match, semantics="subgraph")
            for q in workload
        ]
        return simulation + subgraph

    @pytest.fixture(scope="class")
    def expected(self, baseline, pattern_queries):
        return [
            pattern_signature(a) for a in baseline.answer_batch(pattern_queries, ALPHA)
        ]

    @pytest.mark.parametrize("k", KS)
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_contained_balls_bit_identical(
        self, sharded_engines, pattern_queries, expected, k, executor
    ):
        engine = sharded_engines[k]
        report = engine.run_batch(pattern_queries, ALPHA, executor=executor, workers=2)
        contained = 0
        for query, answer, want in zip(pattern_queries, report.answers, expected):
            home = engine.partition.shard_of(query.personalized_match)
            if engine.shards[home].ball_in_core(
                query.personalized_match, query.pattern.diameter()
            ):
                contained += 1
                assert pattern_signature(answer) == want, (
                    f"k={k}/{executor}: contained ball diverged for "
                    f"vp={query.personalized_match!r}"
                )
        if k == 1:
            assert contained == len(pattern_queries)
        else:
            # The clustered fixture must actually exercise the contained
            # path, or the contract above is tested vacuously.
            assert contained > 0, "fixture produced no shard-contained balls"

    @pytest.mark.parametrize("k", (2, 4))
    def test_spilled_balls_still_match_reference(
        self, sharded_engines, pattern_queries, expected, k
    ):
        # Not contractual (the contract covers contained balls), but the
        # region assembly preserves every read the matchers make, so spilled
        # answers should reproduce the single-graph reference too.
        report = sharded_engines[k].run_batch(pattern_queries, ALPHA)
        for answer, want in zip(report.answers, expected):
            assert pattern_signature(answer) == want

    def test_absent_personalized_match_answers_empty(self, sharded_engines):
        from repro.patterns.pattern import GraphPattern

        pattern = GraphPattern(
            labels={"u": "A", "v": "B"}, edges=(("u", "v"),), personalized="u", output="v"
        )
        for k in KS:
            answers = sharded_engines[k].answer_batch(
                [PatternQuery(pattern, "ghost")], ALPHA
            )
            assert answers[0].answer == set()
            assert answers[0].subgraph_size == 0


# --------------------------------------------------------------------------- #
# Telemetry
# --------------------------------------------------------------------------- #
class TestReports:
    def test_batch_report_telemetry(self, graph, reach_queries, sharded_engines):
        report = sharded_engines[4].run_batch(reach_queries, ALPHA)
        assert len(report.answers) == len(reach_queries)
        assert report.kinds == {"reach": len(reach_queries)}
        assert report.local_reach + report.cross_reach == len(reach_queries)
        assert report.throughput > 0
        assert 0.0 <= report.spillover_fraction <= 1.0
        assert sum(report.per_shard.values()) >= report.local_reach

    def test_describe_reports_partition_and_boundary(self, sharded_engines):
        profile = sharded_engines[4].describe()
        assert profile["num_shards"] == 4
        assert sum(profile["shard_nodes"]) == sum(
            len(shard.core) for shard in sharded_engines[4].shards.values()
        )
        assert profile["cut_edges"] >= 0
        assert profile["boundary_supernodes"] >= 0

    def test_alpha_validation(self, sharded_engines, reach_queries):
        from repro.exceptions import EngineError

        with pytest.raises(EngineError):
            sharded_engines[2].run_batch(reach_queries, 0.0)


# --------------------------------------------------------------------------- #
# Updates
# --------------------------------------------------------------------------- #
class TestShardedUpdates:
    def test_k1_update_stays_bit_identical(self, graph, reach_queries):
        for mix in ("growth", "uniform"):
            single = QueryEngine(graph.copy(), cache_size=0)
            sharded = ShardedEngine(graph, num_shards=1, seed=7)
            stream = generate_delta_stream(
                graph, batches=3, ops_per_batch=20, mix=mix, seed=13
            )
            for delta in stream:
                single.update(delta)
                sharded.update(delta)
                assert reach_signature(
                    sharded.answer_batch(reach_queries, ALPHA)
                ) == reach_signature(single.answer_batch(reach_queries, ALPHA)), mix

    def test_daemon_parity_across_update(self, graph, reach_queries):
        """Warm daemons track sharded updates: scatter answers stay serial-identical."""
        with ShardedEngine(graph.copy(), num_shards=2, seed=7) as engine:
            stream = generate_delta_stream(graph, batches=2, ops_per_batch=15, mix="growth", seed=29)
            for delta in stream:
                serial = reach_signature(engine.answer_batch(reach_queries, ALPHA))
                daemon = reach_signature(
                    engine.run_batch(reach_queries, ALPHA, executor="daemon", workers=2).answers
                )
                assert daemon == serial
                engine.update(delta)
            serial = reach_signature(engine.answer_batch(reach_queries, ALPHA))
            daemon = reach_signature(
                engine.run_batch(reach_queries, ALPHA, executor="daemon", workers=2).answers
            )
            assert daemon == serial

    def test_confined_churn_takes_the_local_path(self, graph, reach_queries):
        engine = ShardedEngine(graph, num_shards=4, seed=7, halo_depth=1)
        engine.answer_batch(reach_queries, ALPHA)
        shard_id = 0
        core = set(engine.shards[shard_id].core)
        visible = set()
        for other, shard in engine.shards.items():
            if other != shard_id:
                visible |= shard.node_set & core
        pool = core - visible
        assert len(pool) >= 2, "fixture is not locality-friendly enough"
        stream = generate_delta_stream(
            graph, batches=3, ops_per_batch=12, mix="growth", seed=21, confine_nodes=pool
        )
        for delta in stream:
            report = engine.update(delta)
            assert report.mode == "local"
            assert set(report.shard_reports) == {shard_id}
            assert not report.rebuilt_shards
        mutated = stream.final_graph
        for query, answer in zip(
            reach_queries, engine.answer_batch(reach_queries, ALPHA)
        ):
            if answer.reachable:
                assert is_reachable(mutated, query.source, query.target)

    def test_unconfined_churn_rebuilds_affected_shards(self, graph, reach_queries):
        engine = ShardedEngine(graph, num_shards=4, seed=7)
        engine.answer_batch(reach_queries, ALPHA)
        stream = generate_delta_stream(graph, batches=2, ops_per_batch=25, mix="uniform", seed=5)
        rebuilt = False
        for delta in stream:
            report = engine.update(delta)
            if report.mode == "rebuilt":
                rebuilt = True
                assert report.rebuilt_shards
        assert rebuilt
        mutated = stream.final_graph
        for query, answer in zip(
            reach_queries, engine.answer_batch(reach_queries, ALPHA)
        ):
            if answer.reachable:
                assert is_reachable(mutated, query.source, query.target)

    def test_node_removal_routes_to_rebuild(self, graph, reach_queries):
        from repro.updates.delta import GraphDelta

        engine = ShardedEngine(graph, num_shards=2, seed=7)
        engine.answer_batch(reach_queries, ALPHA)
        victim = next(iter(engine.shards[0].core))
        report = engine.update(GraphDelta().remove_node(victim))
        assert report.mode == "rebuilt"
        assert engine.partition.shard_of(victim) is None
        answers = engine.answer_batch(reach_queries, ALPHA)
        working = engine._working
        for query, answer in zip(reach_queries, answers):
            if answer.reachable:
                assert query.source in working and query.target in working
                assert is_reachable(working, query.source, query.target)

    def test_failing_delta_keeps_engine_consistent(self, graph, reach_queries):
        from repro.exceptions import ReproError
        from repro.updates.delta import GraphDelta

        engine = ShardedEngine(graph, num_shards=2, seed=7)
        engine.answer_batch(reach_queries, ALPHA)
        nodes = list(graph.nodes())
        delta = GraphDelta().add_node("fresh-node", label="A")
        delta.add_edge("fresh-node", nodes[0])
        delta.remove_edge("fresh-node", "missing-node")  # invalid: raises mid-delta
        with pytest.raises(ReproError):
            engine.update(delta)
        # The applied prefix is live; answers must still be sound against it.
        working = engine._working
        assert "fresh-node" in working
        for query, answer in zip(
            reach_queries, engine.answer_batch(reach_queries, ALPHA)
        ):
            if answer.reachable:
                assert is_reachable(working, query.source, query.target)


# --------------------------------------------------------------------------- #
# Confined delta workloads (locality experiments)
# --------------------------------------------------------------------------- #
class TestConfinedDeltaWorkload:
    def test_ops_stay_inside_the_pool(self, graph):
        pool = set(list(graph.nodes())[:50])
        stream = generate_delta_stream(
            graph, batches=4, ops_per_batch=15, mix="uniform", seed=3, confine_nodes=pool
        )
        allowed = set(pool)
        for delta in stream:
            for op in delta.ops:
                assert op.node in allowed
                if op.target is not None:
                    assert op.target in allowed

    def test_growth_newcomers_join_the_pool(self, graph):
        pool = set(list(graph.nodes())[:50])
        stream = generate_delta_stream(
            graph, batches=3, ops_per_batch=10, mix="growth", seed=3, confine_nodes=pool
        )
        allowed = set(pool)
        for delta in stream:
            for op in delta.ops:
                if op.kind == "add_node":
                    allowed.add(op.node)
                else:
                    assert op.node in allowed
                    if op.target is not None:
                        assert op.target in allowed

    def test_confinement_is_deterministic(self, graph):
        pool = set(list(graph.nodes())[:40])

        def ops(stream):
            return [
                [(op.kind, op.node, op.target, op.label) for op in delta]
                for delta in stream
            ]

        first = generate_delta_stream(
            graph, batches=3, ops_per_batch=10, mix="uniform", seed=4, confine_nodes=pool
        )
        second = generate_delta_stream(
            graph, batches=3, ops_per_batch=10, mix="uniform", seed=4, confine_nodes=pool
        )
        assert ops(first) == ops(second)

    def test_confinement_validation(self, graph):
        from repro.exceptions import WorkloadError

        with pytest.raises(WorkloadError):
            generate_delta_stream(graph, confine_nodes={"nope"})
        with pytest.raises(WorkloadError):
            generate_delta_stream(graph, confine_nodes=set(list(graph.nodes())[:2]) | {"nope"})


# --------------------------------------------------------------------------- #
# Cross-partitioner sanity on a second topology
# --------------------------------------------------------------------------- #
class TestHashPartitionServing:
    def test_hash_partition_contract_holds(self):
        graph = preferential_attachment_graph(
            num_nodes=250, edges_per_node=2, seed=5, back_edge_probability=0.15
        )
        queries = [ReachQuery(s, t) for s, t in sample_mixed_pairs(graph, 50, seed=3)]
        engine = ShardedEngine(graph, num_shards=3, method="hash", seed=0)
        for query, answer in zip(queries, engine.answer_batch(queries, ALPHA)):
            if answer.reachable:
                assert is_reachable(graph, query.source, query.target)
