"""The shared-memory graph tier (``repro.graph.shm``).

Three contracts under test:

* **round-trip** — ``CSRGraph.to_shared()`` → ``from_shared(name)`` hands
  back a structurally identical graph (nodes, labels, adjacency in order)
  whose arrays are zero-copy read-only views of the segment, for arbitrary
  graphs including empty, edgeless and string-keyed ones;
* **naming/cleanup** — owner close unlinks the ``/dev/shm`` name, attached
  handles only detach, close is idempotent, attachments are refcounted,
  and a process that exits without closing is swept by ``atexit``;
* **prepared-state publication** — ``SharedPreparedGraph.publish`` exports
  every CSR substrate once, workers attach by name and answer
  bit-identically to the parent's state.

The session-scoped ``shm_leak_check`` fixture in ``conftest.py`` backs all
of this up by failing the whole run if any test leaks a segment.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.prepared import PreparedGraph, SharedPreparedGraph, publish_state
from repro.engine.queries import REACH
from repro.exceptions import EngineError
from repro.graph import shm
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_graph
from repro.graph.shm import SEGMENT_PREFIX, SharedCSRGraph, active_segments, attachment_count
from repro.graph.traversal import bfs_order

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def segment_exists(name: str) -> bool:
    return os.path.exists(os.path.join("/dev/shm", name))


def assert_same_graph(left: CSRGraph, right: CSRGraph) -> None:
    """Structural equality: nodes, labels, adjacency — all in order."""
    assert list(left.nodes()) == list(right.nodes())
    assert dict(left.labels()) == dict(right.labels())
    for node in left.nodes():
        assert list(left.successors(node)) == list(right.successors(node))
        assert list(left.predecessors(node)) == list(right.predecessors(node))


class TestRoundTrip:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        num_nodes=st.integers(min_value=1, max_value=120),
        edge_factor=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_round_trip_property(self, num_nodes, edge_factor, seed):
        num_edges = num_nodes * edge_factor if num_nodes > 1 else 0
        num_edges = min(num_edges, num_nodes * (num_nodes - 1))
        graph = CSRGraph.from_digraph(
            random_graph(num_nodes=num_nodes, num_edges=num_edges, seed=seed)
        )
        with graph.to_shared() as handle:
            attached = CSRGraph.from_shared(handle.name)
            try:
                assert_same_graph(graph, attached.graph)
            finally:
                attached.close()

    def test_traversal_parity(self):
        graph = CSRGraph.from_digraph(random_graph(num_nodes=200, num_edges=800, seed=3))
        with graph.to_shared() as handle:
            with CSRGraph.from_shared(handle.name) as attached:
                for start in list(graph.nodes())[:10]:
                    assert list(bfs_order(attached.graph, start)) == list(bfs_order(graph, start))

    def test_string_node_ids_and_labels(self):
        source = DiGraph()
        for name, label in [("alice", "A"), ("bob", "B"), ("carol", "A")]:
            source.add_node(name, label)
        source.add_edge("alice", "bob")
        source.add_edge("bob", "carol")
        graph = CSRGraph.from_digraph(source)
        with graph.to_shared() as handle:
            with SharedCSRGraph.attach(handle.name) as attached:
                assert_same_graph(graph, attached.graph)

    def test_edgeless_graph(self):
        source = DiGraph()
        source.add_node(0, "X")
        source.add_node(1, "Y")
        graph = CSRGraph.from_digraph(source)
        with graph.to_shared() as handle:
            with SharedCSRGraph.attach(handle.name) as attached:
                assert_same_graph(graph, attached.graph)

    def test_attached_arrays_are_read_only_views(self):
        graph = CSRGraph.from_digraph(random_graph(num_nodes=50, num_edges=100, seed=1))
        with graph.to_shared() as handle:
            with SharedCSRGraph.attach(handle.name) as attached:
                import numpy as np

                arr = attached.graph._succ_indices
                assert arr.base is not None  # a view, not a copy
                with pytest.raises((ValueError, RuntimeError)):
                    arr[0] = 99
                assert isinstance(arr, np.ndarray)


class TestNamingAndCleanup:
    def test_names_carry_prefix_and_pid(self):
        graph = CSRGraph.from_digraph(random_graph(num_nodes=10, num_edges=20, seed=0))
        with graph.to_shared() as handle:
            assert handle.name.startswith(f"{SEGMENT_PREFIX}{os.getpid()}_")
            assert segment_exists(handle.name)

    def test_owner_close_unlinks(self):
        graph = CSRGraph.from_digraph(random_graph(num_nodes=10, num_edges=20, seed=0))
        handle = graph.to_shared()
        name = handle.name
        assert segment_exists(name)
        assert name in active_segments()
        handle.close()
        assert not segment_exists(name)
        assert name not in active_segments()

    def test_attached_close_does_not_unlink(self):
        graph = CSRGraph.from_digraph(random_graph(num_nodes=10, num_edges=20, seed=0))
        with graph.to_shared() as handle:
            attached = SharedCSRGraph.attach(handle.name)
            assert not attached.owner
            attached.close()
            assert segment_exists(handle.name)  # owner still serving

    def test_close_is_idempotent_and_refcounted(self):
        graph = CSRGraph.from_digraph(random_graph(num_nodes=10, num_edges=20, seed=0))
        handle = graph.to_shared()
        name = handle.name
        first = SharedCSRGraph.attach(name)
        second = SharedCSRGraph.attach(name)
        assert attachment_count(name) == 3  # owner + two attachments
        first.close()
        first.close()  # idempotent
        assert attachment_count(name) == 2
        second.close()
        handle.close()
        assert attachment_count(name) == 0

    def test_closed_handle_refuses_materialisation(self):
        graph = CSRGraph.from_digraph(random_graph(num_nodes=10, num_edges=20, seed=0))
        handle = graph.to_shared()
        handle.close()
        with pytest.raises(ValueError):
            handle.graph

    def test_close_with_live_views_still_unlinks(self):
        graph = CSRGraph.from_digraph(random_graph(num_nodes=30, num_edges=60, seed=2))
        handle = graph.to_shared()
        live = handle.graph  # views keep the mapping alive past close()
        name = handle.name
        handle.close()
        assert not segment_exists(name)
        assert live.num_nodes() == graph.num_nodes()  # pages live until GC

    def test_pickle_round_trip_attaches_non_owner(self):
        graph = CSRGraph.from_digraph(random_graph(num_nodes=40, num_edges=80, seed=5))
        with graph.to_shared() as handle:
            clone = pickle.loads(pickle.dumps(handle))
            try:
                assert not clone.owner
                assert_same_graph(graph, clone.graph)
            finally:
                clone.close()
            assert segment_exists(handle.name)

    def test_atexit_sweep_unlinks_leaked_owner(self):
        """A process that exits without closing must not strand its segment."""
        script = (
            "from repro.graph.csr import CSRGraph\n"
            "from repro.graph.generators import random_graph\n"
            "handle = CSRGraph.from_digraph(random_graph(20, 40, seed=1)).to_shared()\n"
            "print(handle.name)\n"  # exit WITHOUT close: atexit must sweep
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONPATH": REPO_SRC},
        )
        name = result.stdout.strip().splitlines()[-1]
        assert name.startswith(SEGMENT_PREFIX)
        assert not segment_exists(name)


class TestSharedPreparedGraph:
    def test_publish_attach_parity(self):
        graph = random_graph(num_nodes=150, num_edges=600, seed=11)
        prepared = PreparedGraph(graph)
        prepared.prepare(REACH, 0.2, eager=True)
        nodes = list(graph.nodes())
        pairs = list(zip(nodes[:20], nodes[5:25]))
        with publish_state(prepared) as handle:
            assert handle.segment_names()
            attached = handle.attach()
            reference = prepared.rbreach(0.2)
            matcher = attached.rbreach(0.2)
            for source, target in pairs:
                assert matcher.query(source, target) == reference.query(source, target)

    def test_attach_after_close_raises(self):
        graph = random_graph(num_nodes=30, num_edges=60, seed=1)
        handle = publish_state(PreparedGraph(graph))
        handle.close()
        with pytest.raises(EngineError):
            handle.attach()

    def test_publish_shares_substrate_not_pickles(self):
        """The CSR substrate rides in segments; the payload holds only indexes."""
        graph = random_graph(num_nodes=400, num_edges=1600, seed=7)
        prepared = PreparedGraph(graph)
        whole = len(pickle.dumps(prepared))
        with publish_state(prepared) as handle:
            assert handle.payload_bytes < whole
            assert len(handle.segment_names()) >= 1

    def test_mapping_of_states_publishes_every_substrate(self):
        """The sharded engine's ``{shard_id: ShardState}`` table publishes too."""
        from repro.shard.engine import ShardedEngine

        graph = random_graph(num_nodes=200, num_edges=800, seed=13)
        with ShardedEngine(graph, num_shards=2, seed=3) as engine:
            states = {
                shard_id: shard.prepared for shard_id, shard in engine.shards.items()
            }
            # Raw PreparedGraph mappings are not the duck-typed ShardState
            # shape, so exercise the real path through a daemon batch instead.
            del states
            from repro.engine.queries import ReachQuery

            nodes = list(graph.nodes())
            queries = [ReachQuery(nodes[i], nodes[-1 - i]) for i in range(10)]
            serial = engine.answer_batch(queries, 0.2)
            daemon = engine.run_batch(queries, 0.2, executor="daemon", workers=2).answers
            assert [a.reachable for a in daemon] == [a.reachable for a in serial]

    def test_leak_free_after_engine_lifecycle(self):
        before = set(shm.active_segments())
        graph = random_graph(num_nodes=100, num_edges=400, seed=17)
        from repro.engine import QueryEngine
        from repro.engine.queries import ReachQuery

        nodes = list(graph.nodes())
        queries = [ReachQuery(nodes[i], nodes[-1 - i]) for i in range(8)]
        with QueryEngine(graph, cache_size=0) as engine:
            engine.answer_batch(queries, 0.2, executor="daemon", workers=2)
            assert set(shm.active_segments()) > before  # pool holds segments
        assert set(shm.active_segments()) == before
