"""Tests for graph simulation and dual simulation."""

import pytest

from repro.graph.digraph import DiGraph
from repro.matching.simulation import (
    dual_simulation,
    graph_simulation,
    output_matches,
    relation_is_empty,
    verify_dual_simulation,
)
from repro.patterns.pattern import make_pattern


@pytest.fixture
def chain_pattern():
    """A -> B -> C path pattern, personalized at the A node."""
    return make_pattern({0: "A", 1: "B", 2: "C"}, [(0, 1), (1, 2)], personalized=0, output=2)


@pytest.fixture
def chain_graph():
    graph = DiGraph()
    for node, label in [(1, "A"), (2, "B"), (3, "C"), (4, "B"), (5, "C"), (6, "B")]:
        graph.add_node(node, label)
    graph.add_edge(1, 2)
    graph.add_edge(2, 3)
    graph.add_edge(1, 4)
    graph.add_edge(4, 5)
    graph.add_edge(1, 6)  # B node with no C child
    return graph


class TestDualSimulation:
    def test_finds_expected_matches(self, chain_pattern, chain_graph):
        relation = dual_simulation(chain_pattern, chain_graph, personalized_match=1)
        assert relation[0] == {1}
        assert relation[1] == {2, 4}  # node 6 has no C child
        assert relation[2] == {3, 5}
        assert output_matches(chain_pattern, relation) == {3, 5}

    def test_relation_verifies(self, chain_pattern, chain_graph):
        relation = dual_simulation(chain_pattern, chain_graph, personalized_match=1)
        assert verify_dual_simulation(chain_pattern, chain_graph, relation, personalized_match=1)

    def test_empty_when_personalized_missing(self, chain_pattern, chain_graph):
        relation = dual_simulation(chain_pattern, chain_graph, personalized_match=999)
        assert relation_is_empty(relation)

    def test_empty_when_label_absent(self, chain_graph):
        pattern = make_pattern({0: "A", 1: "Z"}, [(0, 1)], personalized=0, output=1)
        relation = dual_simulation(pattern, chain_graph, personalized_match=1)
        assert relation_is_empty(relation)

    def test_parent_condition_enforced(self):
        # Pattern B <- A -> C plus C requiring a B parent: b1 -> c1 and a -> c1.
        pattern = make_pattern(
            {0: "A", 1: "B", 2: "C"}, [(0, 1), (0, 2), (1, 2)], personalized=0, output=2
        )
        graph = DiGraph()
        for node, label in [("a", "A"), ("b", "B"), ("c_ok", "C"), ("c_orphan", "C")]:
            graph.add_node(node, label)
        graph.add_edge("a", "b")
        graph.add_edge("a", "c_ok")
        graph.add_edge("a", "c_orphan")
        graph.add_edge("b", "c_ok")
        relation = dual_simulation(pattern, graph, personalized_match="a")
        assert relation[2] == {"c_ok"}

    def test_example1_matches(self, example1_graph, example1_query):
        relation = dual_simulation(example1_query, example1_graph, personalized_match="Michael")
        assert output_matches(example1_query, relation) == {"cl3", "cl4"}
        assert relation["CC"] == {"cc1", "cc3"}
        assert relation["HG"] == {"hg3"}

    def test_cyclic_data_graph(self):
        pattern = make_pattern({0: "X", 1: "X"}, [(0, 1)], personalized=0, output=1)
        graph = DiGraph()
        graph.add_node(1, "X")
        graph.add_node(2, "X")
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        relation = dual_simulation(pattern, graph, personalized_match=1)
        # The personalized node is pinned to data node 1, so only node 2 has a
        # parent matching it; node 1's parent (node 2) is not the pinned match.
        assert relation[1] == {2}


class TestGraphSimulation:
    def test_graph_simulation_is_weaker_than_dual(self, example1_graph, example1_query):
        simple = graph_simulation(example1_query, example1_graph, personalized_match="Michael")
        dual = dual_simulation(example1_query, example1_graph, personalized_match="Michael")
        for query_node in example1_query.nodes():
            assert dual[query_node] <= simple[query_node]

    def test_graph_simulation_child_condition(self):
        # Sanity-check of the child-preservation condition on a tiny graph.
        pattern = make_pattern({0: "A", 1: "C"}, [(0, 1)], personalized=0, output=1)
        graph = DiGraph()
        graph.add_node("a", "A")
        graph.add_node("c", "C")
        graph.add_edge("a", "c")
        relation = graph_simulation(pattern, graph, personalized_match="a")
        assert relation[1] == {"c"}


class TestVerifier:
    def test_verifier_accepts_empty_relation(self, example1_graph, example1_query):
        empty = {node: set() for node in example1_query.nodes()}
        assert verify_dual_simulation(example1_query, example1_graph, empty, "Michael")

    def test_verifier_rejects_label_violation(self, example1_graph, example1_query):
        relation = dual_simulation(example1_query, example1_graph, "Michael")
        relation["CL"] = set(relation["CL"]) | {"hg1"}  # wrong label
        assert not verify_dual_simulation(example1_query, example1_graph, relation, "Michael")

    def test_verifier_rejects_unpinned_personalized(self, example1_graph, example1_query):
        relation = dual_simulation(example1_query, example1_graph, "Michael")
        relation["Michael"] = {"cc1"}
        assert not verify_dual_simulation(example1_query, example1_graph, relation, "Michael")
