"""Tests for graph statistics, label indexing and dataset profiles."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import star_graph
from repro.graph.statistics import (
    LabelIndex,
    average_degree,
    degree_histogram,
    density,
    label_cooccurrence,
    label_histogram,
    maximum_label_fanout,
    profile,
    summarize_for_report,
    top_degree_nodes,
)


@pytest.fixture
def labeled_graph() -> DiGraph:
    graph = DiGraph()
    graph.add_node(1, "A")
    graph.add_node(2, "A")
    graph.add_node(3, "B")
    graph.add_node(4, "C")
    graph.add_edge(1, 2)
    graph.add_edge(1, 3)
    graph.add_edge(2, 3)
    graph.add_edge(3, 4)
    return graph


class TestLabelIndex:
    def test_nodes_with_and_count(self, labeled_graph):
        index = LabelIndex(labeled_graph)
        assert index.nodes_with("A") == {1, 2}
        assert index.count("B") == 1
        assert index.count("missing") == 0
        assert index.labels() == {"A", "B", "C"}

    def test_rarest_label(self, labeled_graph):
        index = LabelIndex(labeled_graph)
        assert index.rarest_label(["A", "B"]) == "B"
        with pytest.raises(ValueError):
            index.rarest_label([])

    def test_returned_sets_are_copies(self, labeled_graph):
        index = LabelIndex(labeled_graph)
        index.nodes_with("A").add(99)
        assert index.nodes_with("A") == {1, 2}


class TestHistograms:
    def test_degree_histogram(self, labeled_graph):
        histogram = degree_histogram(labeled_graph)
        assert sum(histogram.values()) == labeled_graph.num_nodes()
        assert histogram[1] == 1  # node 4

    def test_label_histogram(self, labeled_graph):
        assert label_histogram(labeled_graph) == {"A": 2, "B": 1, "C": 1}

    def test_average_degree_and_density(self, labeled_graph):
        assert average_degree(labeled_graph) == pytest.approx(1.0)
        assert density(labeled_graph) == pytest.approx(4 / 12)
        assert average_degree(DiGraph()) == 0.0
        assert density(DiGraph()) == 0.0


class TestProfileAndReports:
    def test_profile_fields(self, labeled_graph):
        stats = profile(labeled_graph)
        assert stats.num_nodes == 4
        assert stats.num_edges == 4
        assert stats.size == 8
        assert stats.num_labels == 3
        assert stats.max_degree == labeled_graph.max_degree()
        assert len(stats.as_row()) == 7

    def test_summarize_for_report(self, labeled_graph):
        report = summarize_for_report(labeled_graph, "toy")
        assert report["dataset"] == "toy"
        assert report["nodes"] == 4
        assert report["size"] == 8

    def test_top_degree_nodes(self, labeled_graph):
        top = top_degree_nodes(labeled_graph, 2)
        assert len(top) == 2
        assert top[0] == 3  # degree 3

    def test_label_cooccurrence(self, labeled_graph):
        cooccurrence = label_cooccurrence(labeled_graph)
        assert cooccurrence[("A", "B")] == 2
        assert cooccurrence[("B", "C")] == 1

    def test_maximum_label_fanout(self):
        graph = star_graph(5)
        assert maximum_label_fanout(graph) == 5
