"""Tests for strong simulation (Match / MatchOpt baselines)."""

import pytest

from repro.graph.digraph import DiGraph
from repro.matching.strong_simulation import match_in_subgraph, match_opt, strong_simulation
from repro.patterns.pattern import make_pattern


class TestStrongSimulation:
    def test_example1_answer(self, example1_graph, example1_query):
        result = strong_simulation(example1_query, example1_graph, "Michael")
        assert result.answer == {"cl3", "cl4"}
        assert result.ball_size > 0
        assert result.visited >= result.ball_size

    def test_match_opt_is_alias(self, example1_graph, example1_query):
        assert match_opt(example1_query, example1_graph, "Michael").answer == {"cl3", "cl4"}

    def test_missing_personalized_node_gives_empty_answer(self, example1_graph, example1_query):
        result = strong_simulation(example1_query, example1_graph, "nobody")
        assert result.answer == set()
        assert result.ball_size == 0

    def test_ball_restriction_excludes_far_matches(self):
        # Pattern: A -> B (diameter 1).  A long chain a -> x -> b places the
        # second B outside the 1-ball of the personalized match, so only the
        # direct child matches.
        pattern = make_pattern({0: "A", 1: "B"}, [(0, 1)], personalized=0, output=1)
        graph = DiGraph()
        for node, label in [("a", "A"), ("b1", "B"), ("mid", "M"), ("a2", "A"), ("b2", "B")]:
            graph.add_node(node, label)
        graph.add_edge("a", "b1")
        graph.add_edge("a", "mid")
        graph.add_edge("mid", "a2")
        graph.add_edge("a2", "b2")
        result = strong_simulation(pattern, graph, "a")
        assert result.answer == {"b1"}

    def test_explicit_radius_override(self, example1_graph, example1_query):
        # Radius 1 excludes the CL nodes (2 hops from Michael): no match.
        result = strong_simulation(example1_query, example1_graph, "Michael", radius=1)
        assert result.answer == set()

    def test_no_match_when_constraint_unsatisfied(self, example1_graph):
        pattern = make_pattern(
            {"Michael": "Michael", "HG": "HG", "X": "DOES-NOT-EXIST"},
            [("Michael", "HG"), ("HG", "X")],
            personalized="Michael",
            output="X",
        )
        result = strong_simulation(pattern, example1_graph, "Michael")
        assert result.answer == set()


class TestMatchInSubgraph:
    def test_match_in_reduced_subgraph(self, example1_graph, example1_query):
        from repro.graph.subgraph import induced_subgraph

        subgraph = induced_subgraph(
            example1_graph, ["Michael", "cc1", "cc3", "hg3", "cl3", "cl4"]
        )
        answer = match_in_subgraph(example1_query, subgraph, "Michael")
        assert answer == {"cl3", "cl4"}

    def test_subgraph_answer_is_subset_of_exact(self, example1_graph, example1_query):
        from repro.graph.subgraph import induced_subgraph

        exact = strong_simulation(example1_query, example1_graph, "Michael").answer
        # Remove cc3 so cl4 loses its only CC parent in the subgraph.
        subgraph = induced_subgraph(example1_graph, ["Michael", "cc1", "hg3", "cl3", "cl4"])
        approx = match_in_subgraph(example1_query, subgraph, "Michael")
        assert approx <= exact
        assert approx == {"cl3"}

    def test_empty_subgraph_gives_empty_answer(self, example1_query):
        assert match_in_subgraph(example1_query, DiGraph(), "Michael") == set()
