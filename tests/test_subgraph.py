"""Tests for induced/edge subgraphs and the incremental SubgraphBuilder."""

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.subgraph import SubgraphBuilder, edge_subgraph, induced_subgraph, is_subgraph


@pytest.fixture
def host() -> DiGraph:
    graph = DiGraph.from_edges(
        [(1, 2), (2, 3), (3, 1), (3, 4), (4, 5)],
        labels={1: "A", 2: "B", 3: "C", 4: "D", 5: "E"},
    )
    return graph


class TestInducedSubgraph:
    def test_keeps_all_internal_edges(self, host):
        sub = induced_subgraph(host, [1, 2, 3])
        assert sub.num_nodes() == 3
        assert sub.num_edges() == 3
        assert sub.has_edge(3, 1)
        assert not sub.has_edge(3, 4)

    def test_labels_are_copied(self, host):
        sub = induced_subgraph(host, [3, 4])
        assert sub.label(3) == "C"
        assert sub.label(4) == "D"

    def test_unknown_node_raises(self, host):
        with pytest.raises(NodeNotFoundError):
            induced_subgraph(host, [1, 99])

    def test_empty_selection(self, host):
        sub = induced_subgraph(host, [])
        assert sub.size() == 0


class TestEdgeSubgraph:
    def test_contains_exactly_requested_edges(self, host):
        sub = edge_subgraph(host, [(1, 2), (3, 4)])
        assert sub.num_nodes() == 4
        assert sub.num_edges() == 2
        assert sub.has_edge(1, 2) and sub.has_edge(3, 4)
        assert not sub.has_edge(2, 3)

    def test_unknown_endpoint_raises(self, host):
        with pytest.raises(NodeNotFoundError):
            edge_subgraph(host, [(1, 99)])


class TestIsSubgraph:
    def test_induced_subgraph_is_subgraph(self, host):
        assert is_subgraph(induced_subgraph(host, [1, 2, 3]), host)

    def test_extra_edge_is_not_subgraph(self, host):
        candidate = DiGraph.from_edges([(2, 1)], labels={1: "A", 2: "B"})
        assert not is_subgraph(candidate, host)

    def test_label_mismatch_is_not_subgraph(self, host):
        candidate = DiGraph()
        candidate.add_node(1, "WRONG")
        assert not is_subgraph(candidate, host)


class TestSubgraphBuilder:
    def test_add_node_copies_label_and_reports_new(self, host):
        builder = SubgraphBuilder(host)
        assert builder.add_node(1) is True
        assert builder.add_node(1) is False
        assert builder.build().label(1) == "A"

    def test_add_node_unknown_raises(self, host):
        builder = SubgraphBuilder(host)
        with pytest.raises(NodeNotFoundError):
            builder.add_node(99)

    def test_add_edge_requires_host_edge(self, host):
        builder = SubgraphBuilder(host)
        builder.add_node(1)
        builder.add_node(3)
        with pytest.raises(NodeNotFoundError):
            builder.add_edge(1, 3)  # not an edge of the host

    def test_add_edge_requires_added_nodes(self, host):
        builder = SubgraphBuilder(host)
        builder.add_node(1)
        with pytest.raises(NodeNotFoundError):
            builder.add_edge(1, 2)

    def test_connect_to_existing_adds_both_directions(self, host):
        builder = SubgraphBuilder(host)
        builder.add_node(2)
        builder.add_node(3)
        builder.add_node(1)
        added = builder.connect_to_existing(1)
        # host edges incident to 1 among {1,2,3}: (1,2) and (3,1)
        assert added == 2
        result = builder.build()
        assert result.has_edge(1, 2)
        assert result.has_edge(3, 1)

    def test_size_tracks_nodes_plus_edges(self, host):
        builder = SubgraphBuilder(host)
        builder.add_node(1)
        builder.add_node(2)
        builder.add_edge(1, 2)
        assert builder.size() == 3
        assert builder.num_nodes() == 2
        assert builder.num_edges() == 1

    def test_build_returns_copy(self, host):
        builder = SubgraphBuilder(host)
        builder.add_node(1)
        snapshot = builder.build()
        builder.add_node(2)
        assert 2 not in snapshot

    def test_result_is_subgraph_of_host(self, host):
        builder = SubgraphBuilder(host)
        for node in (1, 2, 3):
            builder.add_node(node)
            builder.connect_to_existing(node)
        assert is_subgraph(builder.build(), host)
