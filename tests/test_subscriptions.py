"""Standing queries (``repro.subscribe``): oracle, envelopes, maintenance.

The contracts under test:

* **one oracle** — ``partition_entries`` is the single answer-unchanged
  predicate: ``noop`` retains everything, ``rebuilt`` retains nothing,
  reachability retention needs the preserved α index *and* untouched
  endpoints, pattern retention needs an unmoved budget quantum, an intact
  max-degree guard and a far-enough ball — and the guard never outlives the
  pattern entries it described;
* **envelope integrity** — ``replay`` folds a pushed delta log back into
  the final answer and rejects gaps, mixed logs and broken old→new chains;
* **maintenance parity** (the tentpole property) — after any churn stream,
  over several graph families, executors and shard counts, every
  subscription's materialised answer is bit-identical to a fresh query on a
  freshly prepared engine, and the replayed delta log reconstructs exactly
  that answer.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.invalidation import (
    anchor_of,
    hops_from,
    partition_entries,
    pattern_budget_changed,
)
from repro.engine.prepared import UpdateSummary
from repro.engine.queries import REACH
from repro.exceptions import ServiceError
from repro.graph.digraph import DiGraph
from repro.graph.generators import community_graph
from repro.service import (
    GraphService,
    PatternRequest,
    ReachRequest,
    ServiceConfig,
    replay,
)
from repro.subscribe import INITIAL, UPDATE, AnswerDelta, answer_signature
from repro.workloads.deltas import generate_delta_stream
from repro.workloads.queries import generate_pattern_workload
from repro.workloads import youtube_like

ALPHA = 0.05


def line_graph(n=12, label="A"):
    graph = DiGraph()
    for i in range(n):
        graph.add_node(i, label)
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


def summary_for(mode="patched", **kwargs) -> UpdateSummary:
    defaults = dict(
        delta_ops=1,
        size_before=100,
        size_after=100,
        touched_degrees_before={},
        touched_degrees_after={},
    )
    defaults.update(kwargs)
    return UpdateSummary(mode=mode, **defaults)


# --------------------------------------------------------------------------- #
# The shared oracle
# --------------------------------------------------------------------------- #
class TestPartitionEntries:
    REACH_ENTRY = ("r", ALPHA, (REACH, 0, 9))
    PATTERN_ENTRY = ("p", ALPHA, ("pattern", 5, 2))

    def _graph(self):
        return line_graph()

    def test_noop_retains_everything_and_keeps_the_guard(self):
        decision = partition_entries(
            [self.REACH_ENTRY, self.PATTERN_ENTRY],
            summary_for("noop"),
            pattern_guard=7,
            graph=self._graph(),
            max_degree=lambda: 7,
        )
        assert set(decision.retained) == {"r", "p"}
        assert decision.stale == []
        assert decision.pattern_guard == 7

    def test_rebuilt_marks_everything_stale(self):
        decision = partition_entries(
            [self.REACH_ENTRY, self.PATTERN_ENTRY],
            summary_for("rebuilt"),
            pattern_guard=7,
            graph=self._graph(),
            max_degree=lambda: 7,
        )
        assert set(decision.stale) == {"r", "p"}
        assert decision.pattern_guard is None

    def test_anchorless_entry_is_always_stale(self):
        decision = partition_entries(
            [("mystery", ALPHA, None)],
            summary_for(reach_alphas_preserved={ALPHA: True}),
            pattern_guard=None,
            graph=self._graph(),
            max_degree=lambda: 2,
        )
        assert decision.stale == ["mystery"]

    def test_reach_needs_preserved_index_and_untouched_endpoints(self):
        preserved = {ALPHA: True}
        for touched, kept in (({5}, True), ({0}, False), ({9}, False)):
            decision = partition_entries(
                [self.REACH_ENTRY],
                summary_for(touched_nodes=touched, reach_alphas_preserved=preserved),
                pattern_guard=None,
                graph=self._graph(),
                max_degree=lambda: 2,
            )
            assert ("r" in decision.retained) is kept
        decision = partition_entries(
            [self.REACH_ENTRY],
            summary_for(touched_nodes={5}, reach_alphas_preserved={ALPHA: False}),
            pattern_guard=None,
            graph=self._graph(),
            max_degree=lambda: 2,
        )
        assert decision.stale == ["r"]

    def test_pattern_without_guard_is_stale(self):
        decision = partition_entries(
            [self.PATTERN_ENTRY],
            summary_for(touched_nodes={11}),
            pattern_guard=None,
            graph=self._graph(),
            max_degree=lambda: 2,
        )
        assert decision.stale == ["p"]

    def test_pattern_ball_distance_decides(self):
        # Pattern anchored at node 5 with radius 2: touching node 8 (3 hops
        # away) retains it, touching node 7 (2 hops) does not.
        for touched, kept in (({8}, True), ({7}, False), ({5}, False)):
            decision = partition_entries(
                [self.PATTERN_ENTRY],
                summary_for(touched_nodes=touched),
                pattern_guard=2,
                graph=self._graph(),
                max_degree=lambda: 2,
            )
            assert ("p" in decision.retained) is kept, touched

    def test_budget_quantum_crossing_evicts_within_quantum_retains(self):
        # α=0.05: ⌊0.05·100⌋ = 5 = ⌊0.05·119⌋, but ⌊0.05·120⌋ = 6.
        within = summary_for(touched_nodes={11}, size_before=100, size_after=119)
        crossing = summary_for(touched_nodes={11}, size_before=100, size_after=120)
        assert not pattern_budget_changed(ALPHA, within)
        assert pattern_budget_changed(ALPHA, crossing)
        for summary, kept in ((within, True), (crossing, False)):
            decision = partition_entries(
                [self.PATTERN_ENTRY],
                summary,
                pattern_guard=2,
                graph=self._graph(),
                max_degree=lambda: 2,
            )
            assert ("p" in decision.retained) is kept

    def test_budget_quantum_is_per_alpha(self):
        # The same drift moves α=0.05's budget but not α=0.01's.
        summary = summary_for(touched_nodes={11}, size_before=100, size_after=120)
        assert pattern_budget_changed(0.05, summary)
        assert not pattern_budget_changed(0.01, summary)

    def test_degree_above_guard_evicts_all_patterns(self):
        decision = partition_entries(
            [self.PATTERN_ENTRY],
            summary_for(touched_nodes={11}, touched_degrees_after={11: 3}),
            pattern_guard=2,
            graph=self._graph(),
            max_degree=lambda: 3,
        )
        assert decision.stale == ["p"]
        assert decision.pattern_guard is None

    def test_shrunk_guard_holder_rechecks_the_live_max(self):
        summary = summary_for(
            touched_nodes={11},
            touched_degrees_before={11: 2},
            touched_degrees_after={11: 1},
        )
        kept = partition_entries(
            [self.PATTERN_ENTRY], summary, pattern_guard=2,
            graph=self._graph(), max_degree=lambda: 2,
        )
        assert kept.retained == ["p"]
        dropped = partition_entries(
            [self.PATTERN_ENTRY], summary, pattern_guard=2,
            graph=self._graph(), max_degree=lambda: 1,
        )
        assert dropped.stale == ["p"]

    def test_guard_never_outlives_the_pattern_entries(self):
        # Every pattern entry goes stale -> the guard must come back None,
        # even though it was valid coming in (the stale-guard healing rule).
        decision = partition_entries(
            [self.PATTERN_ENTRY, self.REACH_ENTRY],
            summary_for(
                touched_nodes={5}, reach_alphas_preserved={ALPHA: True}
            ),
            pattern_guard=2,
            graph=self._graph(),
            max_degree=lambda: 2,
        )
        assert decision.stale == ["p"]
        assert decision.retained == ["r"]
        assert decision.pattern_guard is None

    def test_hops_from_is_undirected_and_bounded(self):
        graph = line_graph(6)
        hops = hops_from(graph, {3}, max_hops=2)
        assert hops == {3: 0, 2: 1, 4: 1, 1: 2, 5: 2}

    def test_anchor_of_both_query_classes(self):
        assert anchor_of(ReachRequest(3, 8)) == (REACH, 3, 8)
        graph = youtube_like(seed=0)
        query = next(iter(generate_pattern_workload(graph, shape=(3, 3), count=1, seed=1)))
        anchor = anchor_of(
            PatternRequest(query.pattern, query.personalized_match)
        )
        assert anchor == ("pattern", query.personalized_match, 3)


# --------------------------------------------------------------------------- #
# Envelope chains
# --------------------------------------------------------------------------- #
def _reach_answer(marker):
    """A minimal reach-answer stand-in with a distinguishing signature."""
    from types import SimpleNamespace

    return SimpleNamespace(reachable=True, visited=marker, met_at=None, exhausted=False)


class TestReplay:
    A, B, C, X = (_reach_answer(marker) for marker in "abcx")

    def _chain(self):
        return [
            AnswerDelta(1, 0, REACH, None, self.A, reason=INITIAL),
            AnswerDelta(1, 1, REACH, self.A, self.B),
            AnswerDelta(1, 2, REACH, self.B, self.C),
        ]

    def test_replay_folds_to_the_final_answer(self):
        assert replay(self._chain()) is self.C
        assert replay(self._chain()[:1]) is self.A

    def test_replay_rejects_empty_and_mixed_logs(self):
        with pytest.raises(ServiceError):
            replay([])
        mixed = self._chain()
        mixed.append(AnswerDelta(2, 0, REACH, None, self.X, reason=INITIAL))
        with pytest.raises(ServiceError):
            replay(mixed)

    def test_replay_rejects_a_missing_snapshot_and_epoch_gaps(self):
        with pytest.raises(ServiceError):
            replay(self._chain()[1:])
        gapped = self._chain()
        gapped[2] = AnswerDelta(1, 3, REACH, self.B, self.C)
        with pytest.raises(ServiceError):
            replay(gapped)

    def test_replay_rejects_a_broken_old_new_chain(self):
        broken = self._chain()
        broken[2] = AnswerDelta(1, 2, REACH, self.X, self.C)
        with pytest.raises(ServiceError):
            replay(broken)


# --------------------------------------------------------------------------- #
# The service API
# --------------------------------------------------------------------------- #
class TestSubscribeAPI:
    def _service(self, **overrides):
        return GraphService(youtube_like(seed=2), ServiceConfig(alpha=ALPHA, **overrides))

    def test_registration_materialises_and_pushes_the_snapshot(self):
        with self._service() as service:
            log = []
            sub = service.subscribe(ReachRequest(0, 17), sink=log.append)
            fresh = service.query(ReachRequest(0, 17)).value
            assert sub.signature() == answer_signature(REACH, fresh)
            assert [d.reason for d in log] == [INITIAL]
            assert log[0].epoch == 0 and log[0].old_value is None
            assert len(service.subscriptions()) == 1
            assert service.stats().subscribed == 1

    def test_unsubscribe_accepts_object_or_id_and_rejects_unknown(self):
        with self._service() as service:
            sub = service.subscribe(ReachRequest(0, 1))
            other = service.subscribe(ReachRequest(1, 2))
            service.unsubscribe(sub)
            service.unsubscribe(other.id)
            assert service.subscriptions() == []
            with pytest.raises(ServiceError):
                service.unsubscribe(sub.id)

    def test_subscription_limit_is_enforced(self):
        with self._service(max_subscriptions=2) as service:
            service.subscribe(ReachRequest(0, 1))
            service.subscribe(ReachRequest(1, 2))
            with pytest.raises(ServiceError):
                service.subscribe(ReachRequest(2, 3))

    def test_update_without_subscriptions_reports_no_maintenance(self):
        with self._service() as service:
            report = service.update(GraphDeltaFactory.single_edge(service))
            assert report.maintenance is None

    def test_maintenance_report_partitions_the_table(self):
        with self._service() as service:
            service.subscribe(ReachRequest(0, 9))
            wl = generate_pattern_workload(service.graph, shape=(3, 3), count=2, seed=4)
            for query in wl:
                service.subscribe(PatternRequest(query.pattern, query.personalized_match))
            report = service.update(GraphDeltaFactory.single_edge(service))
            maintenance = report.maintenance
            assert maintenance is not None
            assert maintenance.subscriptions == 3
            assert maintenance.affected + maintenance.skipped == 3
            assert 0.0 <= maintenance.affected_fraction <= 1.0
            stats = service.stats()
            assert stats.sub_affected == maintenance.affected
            assert stats.sub_skipped == maintenance.skipped


class GraphDeltaFactory:
    @staticmethod
    def single_edge(service):
        from repro.updates.delta import GraphDelta

        nodes = list(service.graph.nodes())
        return GraphDelta().add_edge(nodes[0], nodes[len(nodes) // 2])


# --------------------------------------------------------------------------- #
# The tentpole property: maintained ≡ fresh ≡ replayed, everywhere
# --------------------------------------------------------------------------- #
def _families():
    return [
        ("youtube", youtube_like(seed=3), "growth"),
        (
            "community",
            community_graph([18] * 6, intra_probability=0.2, inter_edges=1, seed=5),
            "uniform",
        ),
        ("line", line_graph(80), "growth"),
    ]


@pytest.mark.parametrize("executor", ["serial", "thread", "daemon"])
@pytest.mark.parametrize("shards", [1, 2])
def test_maintained_answers_match_fresh_engines_and_replayed_logs(executor, shards):
    for name, graph, mix in _families():
        config = ServiceConfig(
            alpha=ALPHA,
            executor=executor,
            workers=2,
            num_shards=shards,
            cache_size=256,
        )
        with GraphService(graph.copy() if hasattr(graph, "copy") else graph, config) as service:
            logs = {}
            rng = random.Random(11)
            nodes = list(service.graph.nodes())
            for _ in range(4):
                request = ReachRequest(rng.choice(nodes), rng.choice(nodes))
                log = []
                sub = service.subscribe(request, sink=log.append)
                logs[sub.id] = log
            for query in generate_pattern_workload(
                service.graph, shape=(3, 3), count=4, seed=7
            ):
                log = []
                sub = service.subscribe(
                    PatternRequest(query.pattern, query.personalized_match),
                    sink=log.append,
                )
                logs[sub.id] = log

            for delta in generate_delta_stream(
                service.graph, batches=4, ops_per_batch=6, mix=mix, seed=13
            ):
                report = service.update(delta)
                assert report.maintenance is not None

            with GraphService(service.graph, ServiceConfig(alpha=ALPHA)) as fresh:
                for sub in service.subscriptions():
                    fresh_value = fresh.run_batch([sub.request], sub.alpha).answers[0]
                    assert sub.signature() == answer_signature(sub.kind, fresh_value), (
                        f"{name}/{executor}/k={shards}: subscription {sub.id} "
                        "diverged from a fresh engine"
                    )
                    replayed = replay(logs[sub.id])
                    assert answer_signature(sub.kind, replayed) == sub.signature(), (
                        f"{name}/{executor}/k={shards}: delta log of {sub.id} "
                        "does not replay to the maintained answer"
                    )
