"""Tests for topological sorting, ranks and the rank index."""

import pytest

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import cycle_graph, path_graph
from repro.graph.topology import (
    TopologicalRankIndex,
    longest_path_length,
    topological_levels,
    topological_ranks,
    topological_sort,
    verify_rank_invariant,
)


class TestTopologicalSort:
    def test_sorts_before_successors(self, diamond_dag):
        order = topological_sort(diamond_dag)
        position = {node: index for index, node in enumerate(order)}
        for source, target in diamond_dag.edges():
            assert position[source] < position[target]

    def test_cycle_raises(self):
        with pytest.raises(GraphError):
            topological_sort(cycle_graph(3))

    def test_empty_graph(self):
        assert topological_sort(DiGraph()) == []


class TestRanks:
    def test_path_ranks_decrease_towards_sink(self):
        graph = path_graph(3)
        ranks = topological_ranks(graph)
        assert ranks == {0: 3, 1: 2, 2: 1, 3: 0}

    def test_diamond_ranks(self, diamond_dag):
        ranks = topological_ranks(diamond_dag)
        assert ranks["e"] == 0
        assert ranks["d"] == 1
        assert ranks["b"] == ranks["c"] == 2
        assert ranks["a"] == 3

    def test_rank_invariant_holds(self, diamond_dag):
        assert verify_rank_invariant(diamond_dag)

    def test_rank_invariant_detects_wrong_ranks(self, diamond_dag):
        wrong = topological_ranks(diamond_dag)
        wrong["a"] = 0
        assert not verify_rank_invariant(diamond_dag, wrong)

    def test_edges_strictly_decrease_rank(self, diamond_dag):
        ranks = topological_ranks(diamond_dag)
        for source, target in diamond_dag.edges():
            assert ranks[source] > ranks[target]

    def test_longest_path_length(self, diamond_dag):
        assert longest_path_length(diamond_dag) == 3
        assert longest_path_length(path_graph(7)) == 7

    def test_topological_levels(self, diamond_dag):
        levels = topological_levels(diamond_dag)
        assert levels["a"] == 0
        assert levels["b"] == levels["c"] == 1
        assert levels["d"] == 2
        assert levels["e"] == 3


class TestRankIndex:
    def test_exposes_maxima(self, diamond_dag):
        index = TopologicalRankIndex(diamond_dag)
        assert index.max_rank == 3
        assert index.max_degree == diamond_dag.max_degree()
        assert index.rank("d") == 1
        assert index.ranks()["a"] == 3

    def test_selection_score_normalised(self, diamond_dag):
        index = TopologicalRankIndex(diamond_dag)
        scores = {node: index.selection_score(node) for node in diamond_dag.nodes()}
        assert all(score >= 0 for score in scores.values())
        assert scores["e"] == 0  # rank 0 sink
        assert scores["d"] > 0

    def test_selection_score_single_node_graph(self):
        graph = DiGraph()
        graph.add_node("only", "X")
        index = TopologicalRankIndex(graph)
        assert index.selection_score("only") == 0.0

    def test_range_may_cover_pruning(self, diamond_dag):
        index = TopologicalRankIndex(diamond_dag)
        # A query from rank 3 (a) to rank 0 (e): subtree spanning [1, 2] may cover.
        assert index.range_may_cover((1, 2), source_rank=3, target_rank=0)
        # Entirely above the source rank cannot lie on the path.
        assert not index.range_may_cover((4, 6), source_rank=3, target_rank=2)
        # Entirely below the target rank cannot lie on the path.
        assert not index.range_may_cover((0, 0), source_rank=3, target_rank=1)
