"""End-to-end distributed tracing (``repro.obs.context``/``flight``).

The contracts under test:

* **cross-process assembly** — a batch served through the daemon executor
  (and through ``ShardedEngine`` at k=2) yields exactly one assembled
  timeline containing worker-side spans from other pids, every
  ``parent_id`` resolving within the timeline, and derived queue-wait and
  pipe-transit segments;
* **fork hygiene** — daemon/process-pool children never extend the
  parent's open span stack or write to its sink: worker records travel
  back by value and are re-emitted by the parent (single writer), parented
  under the dispatching span;
* **exemplar bridge** — a forced-slow batch's trace is retrievable from
  the flight recorder via the exemplar on the p99 latency bucket, and the
  ``shard.spillover`` counter's exemplar resolves to the batch that
  spilled;
* **export** — ``to_chrome_trace`` emits valid Chrome trace-event JSON
  (complete ``"X"`` events, µs timestamps, JSON-round-trippable).
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro import obs
from repro.engine import QueryEngine
from repro.engine.queries import ReachQuery
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_graph
from repro.obs import flight
from repro.obs.flight import FlightRecorder
from repro.shard.engine import ShardedEngine

ALPHA = 0.1


@pytest.fixture(autouse=True)
def clean_tracing():
    """Every test starts with tracing off and an empty, enabled registry."""
    from repro.obs import context, trace

    was_enabled = obs.enabled()
    obs.set_enabled(True)
    obs.REGISTRY.reset()
    flight.disable()
    trace.set_sink(None)
    yield
    flight.disable()
    trace.set_sink(None)
    context.reset()
    obs.REGISTRY.reset()
    obs.set_enabled(was_enabled)


@pytest.fixture
def recorder():
    from repro.obs import trace

    recorder = FlightRecorder(capacity=16, slow_ms=None)
    trace.add_collector(recorder)
    yield recorder
    trace.remove_collector(recorder)


def clustered_graph(clusters=2, size=60, seed=1) -> DiGraph:
    """Two well-separated clusters with a few bridges (shard-friendly)."""
    rng = random.Random(seed)
    graph = DiGraph()
    for cluster in range(clusters):
        for i in range(size):
            graph.add_node(cluster * size + i, rng.choice("ABCDE"))
    for cluster in range(clusters):
        base = cluster * size
        for i in range(size):
            graph.add_edge(base + i, base + (i + 1) % size)
            graph.add_edge(base + (i + 1) % size, base + i)
    for cluster in range(clusters):
        other = (cluster + 1) % clusters
        for _ in range(3):
            graph.add_edge(
                cluster * size + rng.randrange(size), other * size + rng.randrange(size)
            )
    return graph


def _assert_linked(timeline):
    """Every non-root record's parent_id resolves inside the timeline."""
    ids = {record["id"] for record in timeline.records}
    for record in timeline.records:
        if record.get("parent_id") is not None:
            assert record["parent_id"] in ids, (
                f"{record['span']} parent {record['parent_id']} not in timeline"
            )


# --------------------------------------------------------------------------- #
# Cross-process timeline assembly
# --------------------------------------------------------------------------- #
class TestDaemonTimeline:
    def test_daemon_batch_assembles_one_cross_process_timeline(self, recorder):
        graph = random_graph(num_nodes=200, num_edges=800, seed=5)
        nodes = list(graph.nodes())
        queries = [ReachQuery(nodes[i], nodes[-1 - i]) for i in range(24)]
        with QueryEngine(graph, cache_size=0) as engine:
            engine.answer_batch(queries, ALPHA, executor="daemon", workers=2)

        timelines = recorder.recent()
        assert len(timelines) == 1, "one batch must assemble exactly one timeline"
        timeline = timelines[0]
        assert timeline.root["span"] == "engine.batch"
        names = set(timeline.span_names())
        # Worker-side spans made it back over the pipes...
        assert {"daemon.worker", "executor.chunk"} <= names
        # ...from a different process than the dispatching parent.
        worker_pids = {
            record["pid"]
            for record in timeline.records
            if record["span"] == "daemon.worker"
        }
        assert worker_pids and os.getpid() not in worker_pids
        # Derived segments exist only as cross-process timestamp differences.
        assert "worker.queue.wait" in names
        directions = {
            record["attrs"]["direction"]
            for record in timeline.records
            if record["span"] == "worker.pipe.transit"
        }
        assert directions == {"outbound", "inbound"}
        _assert_linked(timeline)
        # Worker spans hang under the dispatching engine.batch span.
        root_id = timeline.root["id"]
        for record in timeline.records:
            if record["span"] == "daemon.worker":
                assert record["parent_id"] == root_id
        assert all(record["wall_ms"] >= 0 for record in timeline.records)

    def test_sharded_engine_k2_assembles_one_timeline(self, recorder):
        graph = clustered_graph()
        pairs = [(i, 60 + i) for i in range(0, 24, 2)] + [(60 + i, i) for i in range(0, 12, 2)]
        queries = [ReachQuery(s, t) for s, t in pairs]
        with ShardedEngine(graph, num_shards=2, seed=7) as engine:
            engine.answer_batch(queries, ALPHA, executor="daemon", workers=2)

        timelines = recorder.recent()
        assert len(timelines) == 1
        timeline = timelines[0]
        assert timeline.root["span"] == "shard.batch"
        names = set(timeline.span_names())
        assert "daemon.worker" in names
        assert "worker.queue.wait" in names and "worker.pipe.transit" in names
        assert len(timeline.pids()) >= 2, "expected spans from parent and workers"
        _assert_linked(timeline)

    def test_critical_path_runs_root_to_leaf(self, recorder):
        graph = random_graph(num_nodes=150, num_edges=600, seed=9)
        nodes = list(graph.nodes())
        queries = [ReachQuery(nodes[i], nodes[-1 - i]) for i in range(12)]
        with QueryEngine(graph, cache_size=0) as engine:
            engine.answer_batch(queries, ALPHA, executor="daemon", workers=2)
        timeline = recorder.recent()[0]
        path = timeline.critical_path()
        assert path[0] is timeline.root
        for parent, child in zip(path, path[1:]):
            assert child["parent_id"] == parent["id"]


class TestExecutorPropagation:
    def test_thread_executor_chunks_join_the_batch_trace(self, recorder):
        graph = random_graph(num_nodes=150, num_edges=600, seed=11)
        nodes = list(graph.nodes())
        queries = [ReachQuery(nodes[i], nodes[-1 - i]) for i in range(16)]
        with QueryEngine(graph, cache_size=0) as engine:
            engine.answer_batch(queries, ALPHA, executor="thread", workers=2)
        timeline = recorder.recent()[0]
        assert timeline.root["span"] == "engine.batch"
        chunk_parents = {
            record["parent_id"]
            for record in timeline.records
            if record["span"] == "executor.chunk"
        }
        # Pool threads adopted the dispatching thread's context.
        assert chunk_parents == {timeline.root["id"]}
        _assert_linked(timeline)

    def test_process_executor_ships_worker_spans_back(self, recorder):
        graph = random_graph(num_nodes=150, num_edges=600, seed=13)
        nodes = list(graph.nodes())
        queries = [ReachQuery(nodes[i], nodes[-1 - i]) for i in range(16)]
        with QueryEngine(graph, cache_size=0) as engine:
            engine.answer_batch(queries, ALPHA, executor="process", workers=2)
        timeline = recorder.recent()[0]
        names = set(timeline.span_names())
        assert "executor.chunk" in names
        assert "worker.queue.wait" in names and "worker.pipe.transit" in names
        chunk_pids = {
            record["pid"]
            for record in timeline.records
            if record["span"] == "executor.chunk"
        }
        assert chunk_pids and os.getpid() not in chunk_pids
        _assert_linked(timeline)


# --------------------------------------------------------------------------- #
# Fork hygiene (the satellite bugfix)
# --------------------------------------------------------------------------- #
class TestForkHygiene:
    def test_children_never_extend_the_parents_open_span_stack(self, tmp_path):
        from repro.engine.daemons import DaemonPool
        from repro.obs import trace

        sink_path = tmp_path / "trace.jsonl"
        trace.set_sink(str(sink_path))
        try:
            with obs.span("outer") as outer_span:
                outer_ids = outer_span._ids
                with DaemonPool(workers=2) as pool:
                    pool.run(
                        {"factor": 3}, [[1], [2], [3]], chunk_fn=_echo_chunk
                    )
        finally:
            trace.set_sink(None)

        outer_trace, outer_id = outer_ids[0], outer_ids[1]
        records = [
            json.loads(line) for line in sink_path.read_text().splitlines()
        ]
        worker_records = [r for r in records if r["pid"] != os.getpid()]
        assert worker_records, "worker spans must be re-emitted into the sink"
        for record in worker_records:
            # Post-reset, a worker's first span parents under the *shipped*
            # context — never under a fork-inherited frame of the parent's
            # stack — and joins the dispatching trace.
            assert record["trace"] == outer_trace
            assert record["span"] == "daemon.worker"
            assert record["parent_id"] == outer_id
            assert record["depth"] == 0 and record["parent"] is None


def _echo_chunk(state, task):
    return [state["factor"] * item for item in task]


# --------------------------------------------------------------------------- #
# Exemplars: aggregate -> concrete trace
# --------------------------------------------------------------------------- #
class TestExemplarRetrieval:
    def test_forced_slow_batch_is_retrievable_via_p99_exemplar(self):
        from repro.service import GraphService, ReachRequest, ServiceConfig

        graph = random_graph(num_nodes=260, num_edges=1100, seed=17)
        nodes = list(graph.nodes())
        fast = [ReachRequest(nodes[0], nodes[1])]
        slow = [ReachRequest(nodes[i], nodes[-1 - i]) for i in range(120)]
        with GraphService(
            graph, ServiceConfig(executor="serial", cache_size=4096, alpha=ALPHA)
        ) as service:
            service.prepare(reach_alphas=[ALPHA])
            service.run_batch(fast)  # warm the tiny batch into the cache
            service.enable_tracing(slow_ms=None)
            try:
                for _ in range(6):
                    service.run_batch(fast)  # cache hits: microseconds
                slow_report = service.run_batch(slow)  # cold: the outlier
                assert slow_report.trace_id is not None

                trace_id, timeline = service.trace_for_percentile(
                    "service.batch.seconds", 0.99
                )
                assert trace_id == slow_report.trace_id
                assert timeline is not None
                assert timeline.root["span"] == "service.query"
                assert timeline is service.trace_timeline(slow_report.trace_id)
                # The p50, by contrast, is one of the fast cache-hit batches.
                p50_trace, _ = service.trace_for_percentile(
                    "service.batch.seconds", 0.50
                )
                assert p50_trace != slow_report.trace_id
            finally:
                service.disable_tracing()

    def test_slow_query_log_catches_batches_over_threshold(self):
        from repro.service import GraphService, ReachRequest, ServiceConfig

        graph = random_graph(num_nodes=200, num_edges=800, seed=19)
        nodes = list(graph.nodes())
        requests = [ReachRequest(nodes[i], nodes[-1 - i]) for i in range(40)]
        with GraphService(
            graph, ServiceConfig(executor="serial", cache_size=0, alpha=ALPHA)
        ) as service:
            service.prepare(reach_alphas=[ALPHA])
            service.enable_tracing(slow_ms=0.0)  # everything is "slow"
            try:
                report = service.run_batch(requests)
                slow = service.slow_traces()
                assert [tl.trace_id for tl in slow] == [report.trace_id]
            finally:
                service.disable_tracing()

    def test_shard_spillover_exemplar_resolves_to_the_spilling_batch(self, recorder):
        graph = clustered_graph()
        cross_pairs = [(i, 60 + i) for i in range(0, 20, 2)]
        queries = [ReachQuery(s, t) for s, t in cross_pairs]
        with ShardedEngine(graph, num_shards=2, seed=7) as engine:
            report = engine.run_batch(queries, ALPHA)
        spilled = report.cross_reach + report.miss_composed + report.pattern_spilled
        assert spilled > 0, "cross-cluster pairs must spill at k=2"
        exemplar = obs.REGISTRY.counter("shard.spillover").exemplar
        assert exemplar is not None
        timeline = recorder.timeline(exemplar)
        assert timeline is not None and timeline.root["span"] == "shard.batch"
        # The exemplar also survives the snapshot (the --metrics-json path).
        assert obs.snapshot()["exemplars"]["shard.spillover"] == exemplar


# --------------------------------------------------------------------------- #
# Rendering and Chrome export
# --------------------------------------------------------------------------- #
class TestExport:
    def _timeline(self, recorder):
        graph = random_graph(num_nodes=150, num_edges=600, seed=23)
        nodes = list(graph.nodes())
        queries = [ReachQuery(nodes[i], nodes[-1 - i]) for i in range(12)]
        with QueryEngine(graph, cache_size=0) as engine:
            engine.answer_batch(queries, ALPHA, executor="daemon", workers=2)
        return recorder.recent()[0]

    def test_chrome_trace_export_is_valid(self, recorder, tmp_path):
        timeline = self._timeline(recorder)
        payload = flight.to_chrome_trace(timeline)
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert len(events) == len(timeline.records)
        for event in events:
            assert set(event) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["cat"] in ("span", "derived")
            assert event["args"]["trace"] == timeline.trace_id
        # Round-trips through JSON (what --export writes).
        path = tmp_path / "chrome.json"
        flight.write_chrome_trace(timeline, path)
        reloaded = json.loads(path.read_text(encoding="utf-8"))
        assert reloaded == json.loads(json.dumps(payload))

    def test_waterfall_marks_critical_path_and_lists_every_span(self, recorder):
        timeline = self._timeline(recorder)
        rendered = flight.format_waterfall(timeline)
        lines = rendered.splitlines()
        assert timeline.trace_id in lines[0]
        assert len(lines) == 1 + len(timeline.records)
        assert sum(1 for line in lines[1:] if line.startswith("*")) == len(
            timeline.critical_path()
        )


# --------------------------------------------------------------------------- #
# Recorder bounds
# --------------------------------------------------------------------------- #
class TestRecorderBounds:
    def test_recent_ring_is_bounded_and_evicts_oldest(self):
        from repro.obs import context, trace

        recorder = FlightRecorder(capacity=3, slow_ms=None)
        trace.add_collector(recorder)
        try:
            traces = []
            for _ in range(5):
                with obs.span("service.query"):
                    traces.append(context.trace_id())
        finally:
            trace.remove_collector(recorder)
        recent = [tl.trace_id for tl in recorder.recent()]
        assert recent == traces[-3:]
        assert recorder.timeline(traces[0]) is None  # evicted
