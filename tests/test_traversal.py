"""Tests for BFS/DFS traversal, reachability and diameter helpers."""

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.generators import path_graph
from repro.graph.traversal import (
    ancestors,
    bfs_levels,
    bfs_order,
    bidirectional_reachable,
    connected_component,
    descendants,
    dfs_order,
    diameter,
    eccentricity,
    is_reachable,
    shortest_path,
    weakly_connected_components,
)


class TestBFS:
    def test_bfs_order_visits_everything_reachable(self, diamond_dag):
        order = list(bfs_order(diamond_dag, "a"))
        assert order[0] == "a"
        assert set(order) == {"a", "b", "c", "d", "e"}

    def test_bfs_backward(self, diamond_dag):
        assert set(bfs_order(diamond_dag, "d", direction="backward")) == {"a", "b", "c", "d"}

    def test_bfs_levels_hop_distances(self, diamond_dag):
        levels = bfs_levels(diamond_dag, "a", direction="forward")
        assert levels == {"a": 0, "b": 1, "c": 1, "d": 2, "e": 3}

    def test_bfs_levels_respects_max_hops(self, diamond_dag):
        levels = bfs_levels(diamond_dag, "a", max_hops=1, direction="forward")
        assert set(levels) == {"a", "b", "c"}

    def test_bfs_levels_both_directions(self, diamond_dag):
        levels = bfs_levels(diamond_dag, "d", max_hops=1, direction="both")
        assert set(levels) == {"d", "b", "c", "e"}

    def test_unknown_source_raises(self):
        with pytest.raises(NodeNotFoundError):
            list(bfs_order(DiGraph(), "x"))

    def test_invalid_direction_raises(self, diamond_dag):
        with pytest.raises(ValueError):
            list(bfs_order(diamond_dag, "a", direction="sideways"))


class TestDFS:
    def test_dfs_preorder_starts_at_source(self, diamond_dag):
        order = list(dfs_order(diamond_dag, "a"))
        assert order[0] == "a"
        assert set(order) == {"a", "b", "c", "d", "e"}

    def test_dfs_on_path_is_the_path(self):
        graph = path_graph(4)
        assert list(dfs_order(graph, 0)) == [0, 1, 2, 3, 4]


class TestReachability:
    def test_reachable_forward(self, diamond_dag):
        assert is_reachable(diamond_dag, "a", "e")
        assert not is_reachable(diamond_dag, "e", "a")

    def test_reachable_self(self, diamond_dag):
        assert is_reachable(diamond_dag, "c", "c")

    def test_visit_counter_accumulates(self, diamond_dag):
        counter = [0]
        is_reachable(diamond_dag, "a", "e", visit_counter=counter)
        assert counter[0] > 0

    def test_bidirectional_matches_bfs(self, small_random_graph):
        nodes = sorted(small_random_graph.nodes())[:15]
        for source in nodes[:5]:
            for target in nodes[5:10]:
                assert bidirectional_reachable(small_random_graph, source, target) == is_reachable(
                    small_random_graph, source, target
                )

    def test_unknown_nodes_raise(self, diamond_dag):
        with pytest.raises(NodeNotFoundError):
            is_reachable(diamond_dag, "a", "zzz")
        with pytest.raises(NodeNotFoundError):
            bidirectional_reachable(diamond_dag, "zzz", "a")

    def test_descendants_and_ancestors(self, diamond_dag):
        assert descendants(diamond_dag, "a") == {"b", "c", "d", "e"}
        assert ancestors(diamond_dag, "d") == {"a", "b", "c"}
        assert descendants(diamond_dag, "e") == set()


class TestPathsAndDiameter:
    def test_shortest_path_length(self, diamond_dag):
        path = shortest_path(diamond_dag, "a", "e")
        assert path[0] == "a" and path[-1] == "e"
        assert len(path) == 4

    def test_shortest_path_missing_returns_none(self, diamond_dag):
        assert shortest_path(diamond_dag, "e", "a") is None

    def test_shortest_path_to_self(self, diamond_dag):
        assert shortest_path(diamond_dag, "b", "b") == ["b"]

    def test_eccentricity_and_diameter_of_path(self):
        graph = path_graph(5)
        assert eccentricity(graph, 0) == 5
        assert diameter(graph) == 5
        assert diameter(graph, directed=True) == 5

    def test_directed_vs_undirected_diameter(self, diamond_dag):
        assert diameter(diamond_dag, directed=False) >= diameter(diamond_dag, directed=True) - 1
        assert diameter(diamond_dag, directed=True) == 3

    def test_diameter_with_sampling(self):
        graph = path_graph(20)
        assert diameter(graph, sample=5) <= 20


class TestComponents:
    def test_connected_component(self, two_cycle_graph):
        assert connected_component(two_cycle_graph, 0) == {0, 1, 2, 3, 4, 5}

    def test_weakly_connected_components_split(self):
        graph = DiGraph.from_edges([(1, 2), (3, 4)])
        graph.add_node(5, "isolated")
        components = weakly_connected_components(graph)
        assert len(components) == 3
        assert {1, 2} in components and {3, 4} in components and {5} in components
