"""Tests for the incremental-update layer (``repro.updates`` + engine wiring).

The load-bearing property is **rebuild equivalence**: after any delta
sequence, the updated engine's answers are bit-identical — field by field,
``visited`` counters included — to an engine freshly prepared on the mutated
graph, for every executor and worker count, whether the update was patched
or rebuilt.  On top of that: the overlay must mirror ``DiGraph`` op
semantics exactly (including iteration order), the maintained condensation
must equal a fresh one, and cache invalidation must be surgical (touched
entries evicted, untouched entries provably still exact stay hot).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import PatternQuery, QueryEngine, ReachQuery
from repro.exceptions import EdgeNotFoundError, NodeNotFoundError, WorkloadError
from repro.graph.components import condensation
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.generators import preferential_attachment_graph
from repro.graph.protocol import GraphLike
from repro.graph.topology import TopologicalRankIndex, verify_rank_invariant
from repro.updates import (
    CondensationMaintainer,
    GraphDelta,
    MutableOverlay,
    overlay_digraph_equal,
)
from repro.updates.delta import AppliedDelta
from repro.workloads.deltas import generate_delta_stream
from repro.workloads.queries import generate_reachability_workload

ALPHA = 0.05


def _reach_signature(answers):
    return [(a.reachable, a.visited, a.met_at, a.exhausted) for a in answers]


def _random_delta(rng, graph: DiGraph, ops: int, allow_removals: bool = False) -> GraphDelta:
    """A valid delta for ``graph`` (validated against a working copy)."""
    working = graph.copy()
    nodes = list(working.nodes())
    delta = GraphDelta()
    for position in range(ops):
        roll = rng.random()
        if roll < 0.35:
            source, target = rng.choice(nodes), rng.choice(nodes)
            delta.add_edge(source, target)
            working.add_edge(source, target)
        elif roll < 0.6:
            edges = list(working.edges())
            if not edges:
                continue
            source, target = rng.choice(edges)
            delta.remove_edge(source, target)
            working.remove_edge(source, target)
        elif roll < 0.8:
            name = f"fresh-{position}-{rng.randrange(1 << 20)}"
            label = rng.choice("XYZ")
            target = rng.choice(nodes)
            delta.add_node(name, label=label).add_edge(name, target)
            working.add_node(name, label)
            working.add_edge(name, target)
            nodes.append(name)
        elif allow_removals and len(nodes) > 4:
            victim = rng.choice(nodes)
            delta.remove_node(victim)
            working.remove_node(victim)
            nodes = [node for node in nodes if node != victim]
        else:
            delta.add_node(rng.choice(nodes), label=rng.choice("XYZ"))
    return delta


class TestGraphDelta:
    def test_builders_and_inspection(self):
        delta = GraphDelta().add_node("a", "L").add_edge("a", "b").remove_edge("b", "c").remove_node("d")
        assert delta.size() == len(delta) == 4
        assert delta.touched_nodes() == {"a", "b", "c", "d"}
        assert delta.has_node_removals()
        assert "add_edge=1" in repr(delta)

    def test_apply_to_digraph_matches_manual_ops(self):
        graph = DiGraph.from_edges([(1, 2), (2, 3)], labels={1: "A", 2: "B", 3: "C"})
        delta = GraphDelta().add_node(4, "D").add_edge(3, 4).remove_edge(1, 2)
        applied = delta.apply_to(graph)
        assert graph.has_edge(3, 4) and not graph.has_edge(1, 2)
        assert applied.nodes_added == [4]
        assert applied.edges_added == [(3, 4)]
        assert applied.edges_removed == [(1, 2)]

    def test_remove_node_records_incident_edges(self):
        graph = DiGraph.from_edges([(1, 2), (3, 2), (2, 4)])
        applied = GraphDelta().remove_node(2).apply_to(graph)
        assert set(applied.edges_removed) == {(1, 2), (3, 2), (2, 4)}
        assert applied.nodes_removed == [2]

    def test_invalid_ops_raise_like_digraph(self):
        graph = DiGraph.from_edges([(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            GraphDelta().remove_edge(2, 1).apply_to(graph)
        with pytest.raises(NodeNotFoundError):
            GraphDelta().remove_node(99).apply_to(graph)
        with pytest.raises(NodeNotFoundError):
            GraphDelta().add_edge(1, 99).apply_to(graph)

    def test_reinsert_is_noop_and_relabel_recorded(self):
        graph = DiGraph.from_edges([(1, 2)], labels={1: "A", 2: "B"})
        applied = GraphDelta().add_edge(1, 2).add_node(1, "Z").apply_to(graph)
        assert applied.edges_added == []
        assert applied.relabeled == [1]
        assert graph.label(1) == "Z"


class TestMutableOverlay:
    def test_satisfies_graphlike(self):
        graph = preferential_attachment_graph(num_nodes=40, edges_per_node=2, seed=1)
        overlay = MutableOverlay(CSRGraph.from_digraph(graph))
        assert isinstance(overlay, GraphLike)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_overlay_matches_digraph_ops_exactly(self, seed):
        """Differential property: same ops, same state, same orders, same errors."""
        rng = random.Random(seed)
        graph = preferential_attachment_graph(
            num_nodes=40, edges_per_node=2, seed=seed % 7, back_edge_probability=0.15
        )
        overlay = MutableOverlay(CSRGraph.from_digraph(graph))
        mutable = graph.copy()
        pool = list(mutable.nodes()) + [f"x{i}" for i in range(8)]
        for _ in range(50):
            roll = rng.random()
            if roll < 0.35:
                op = GraphDelta().add_edge(rng.choice(pool), rng.choice(pool))
            elif roll < 0.6:
                op = GraphDelta().remove_edge(rng.choice(pool), rng.choice(pool))
            elif roll < 0.8:
                op = GraphDelta().add_node(rng.choice(pool), label=rng.choice("AB"))
            else:
                op = GraphDelta().remove_node(rng.choice(pool))
            digraph_error = overlay_error = None
            try:
                op.apply_to(mutable)
            except Exception as exc:  # noqa: BLE001 - differential comparison
                digraph_error = type(exc)
            try:
                overlay.apply(op)
            except Exception as exc:  # noqa: BLE001 - differential comparison
                overlay_error = type(exc)
            assert digraph_error == overlay_error
        assert overlay_digraph_equal(overlay, mutable)
        assert overlay.num_edges() == mutable.num_edges()
        for node in mutable.nodes():
            assert overlay.in_degree(node) == mutable.in_degree(node)
            assert overlay.out_degree(node) == mutable.out_degree(node)
            assert overlay.degree(node) == mutable.degree(node)
            assert list(overlay.neighbors(node)) == list(mutable.neighbors(node))
        assert overlay.labels() == dict(mutable.labels())
        for label in mutable.distinct_labels():
            assert overlay.nodes_with_label(label) == mutable.nodes_with_label(label)

    def test_compaction_equals_frozen_mutated_graph(self):
        rng = random.Random(3)
        graph = preferential_attachment_graph(num_nodes=60, edges_per_node=2, seed=3)
        overlay = MutableOverlay(CSRGraph.from_digraph(graph))
        mutable = graph.copy()
        delta = _random_delta(rng, graph, ops=25, allow_removals=True)
        overlay.apply(delta)
        delta.apply_to(mutable)
        compacted = overlay.compact()
        frozen = CSRGraph.from_digraph(mutable)
        assert list(compacted.nodes()) == list(frozen.nodes())
        for node in mutable.nodes():
            assert list(compacted.successors(node)) == list(frozen.successors(node))
            assert list(compacted.predecessors(node)) == list(frozen.predecessors(node))
            assert compacted.label(node) == frozen.label(node)

    def test_fraction_grows_with_churn(self):
        graph = DiGraph.from_edges([(index, index + 1) for index in range(50)])
        overlay = MutableOverlay(CSRGraph.from_digraph(graph))
        assert overlay.fraction() == 0.0
        overlay.apply(GraphDelta().remove_edge(0, 1).add_node("new").add_edge("new", 5))
        assert overlay.overlay_size() == 3
        assert overlay.fraction() == pytest.approx(3 / graph.size())


class TestIncrementalCondensation:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_patched_condensation_equals_fresh(self, seed):
        """Membership, DAG (orders included), ranks and multiplicities match."""
        rng = random.Random(seed)
        graph = preferential_attachment_graph(
            num_nodes=60, edges_per_node=2, seed=seed % 5, back_edge_probability=0.2
        )
        overlay = MutableOverlay(CSRGraph.from_digraph(graph))
        maintainer = CondensationMaintainer.from_fresh(overlay, condensation(overlay))
        pool = list(overlay.nodes())
        for round_number in range(3):
            record = AppliedDelta()
            for position in range(10):
                roll = rng.random()
                op = GraphDelta()
                if roll < 0.45:
                    op.add_edge(rng.choice(pool), rng.choice(pool))
                elif roll < 0.75:
                    edges = list(overlay.edges())
                    if not edges:
                        continue
                    op.remove_edge(*rng.choice(edges))
                elif roll < 0.9:
                    name = f"n{round_number}-{position}"
                    op.add_node(name, label=rng.choice("ABC"))
                    pool.append(name)
                else:
                    op.add_node(rng.choice(pool), label=rng.choice("ABC"))
                try:
                    overlay.apply(op, applied=record)
                except (NodeNotFoundError, EdgeNotFoundError):
                    pass
            result = maintainer.apply(overlay, record)
            assert result is not None
            fresh = condensation(overlay)
            patched = result.condensation
            assert dict(patched.membership) == dict(fresh.membership)
            assert set(patched.dag.nodes()) == set(fresh.dag.nodes())
            assert patched.dag.num_edges() == fresh.dag.num_edges()
            for component in fresh.dag.nodes():
                assert patched.dag.label(component) == fresh.dag.label(component)
                assert list(patched.dag.successors(component)) == list(
                    fresh.dag.successors(component)
                )
                assert list(patched.dag.predecessors(component)) == list(
                    fresh.dag.predecessors(component)
                )
            fresh_ranks = TopologicalRankIndex(fresh.dag)
            assert result.rank_index.ranks() == fresh_ranks.ranks()
            assert result.rank_index.max_rank == fresh_ranks.max_rank
            assert result.rank_index.max_degree == fresh_ranks.max_degree
            assert verify_rank_invariant(patched.dag, result.rank_index.ranks())
            # Maintained degrees feed the selection rerun; they must match.
            assert result.dag_degrees == {
                component: fresh.dag.degree(component) for component in fresh.dag.nodes()
            }
            # The maintained candidate order must equal a fresh full sort.
            from repro.reachability.landmarks import selection_sort_key

            fresh_order = sorted(
                fresh.dag.nodes(),
                key=lambda c: selection_sort_key(
                    c,
                    fresh.dag.degree(c),
                    fresh_ranks.rank(c),
                    float(len(fresh.members[c])),
                ),
            )
            assert result.selection_order == fresh_order

    def test_node_removal_refuses_to_patch(self):
        graph = preferential_attachment_graph(num_nodes=30, edges_per_node=2, seed=0)
        overlay = MutableOverlay(CSRGraph.from_digraph(graph))
        maintainer = CondensationMaintainer.from_fresh(overlay, condensation(overlay))
        record = overlay.apply(GraphDelta().remove_node(next(iter(graph.nodes()))))
        assert maintainer.apply(overlay, record) is None


@pytest.fixture(scope="module")
def served_graph():
    return preferential_attachment_graph(
        num_nodes=400, edges_per_node=2, seed=13, back_edge_probability=0.1
    )


@pytest.fixture(scope="module")
def reach_queries(served_graph):
    workload = generate_reachability_workload(served_graph, count=40, seed=4)
    return [ReachQuery(source, target) for source, target in workload.pairs]


class TestRebuildEquivalence:
    """The acceptance contract: updated answers == freshly prepared answers."""

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        rounds=st.integers(min_value=1, max_value=3),
    )
    def test_patched_updates_match_fresh_prepare(self, served_graph, reach_queries, seed, rounds):
        rng = random.Random(seed)
        engine = QueryEngine(served_graph, cache_size=0)
        engine.answer_batch(reach_queries, ALPHA)  # build the prepared state
        mutable = served_graph.copy()
        for _ in range(rounds):
            delta = _random_delta(rng, mutable, ops=8)
            delta.apply_to(mutable)
            report = engine.update(delta)
            assert report.mode in ("patched", "rebuilt")
        updated = _reach_signature(engine.answer_batch(reach_queries, ALPHA))
        fresh_substrate = QueryEngine(engine.prepared.graph, cache_size=0, mirror="never")
        assert updated == _reach_signature(fresh_substrate.answer_batch(reach_queries, ALPHA))
        fresh_digraph = QueryEngine(mutable, cache_size=0)
        assert updated == _reach_signature(fresh_digraph.answer_batch(reach_queries, ALPHA))
        threaded = engine.answer_batch(reach_queries, ALPHA, executor="thread", workers=3)
        assert updated == _reach_signature(threaded)

    def test_node_removals_take_rebuild_path_and_stay_equivalent(self, served_graph, reach_queries):
        engine = QueryEngine(served_graph, cache_size=0)
        engine.answer_batch(reach_queries, ALPHA)
        mutable = served_graph.copy()
        victim = next(iter(served_graph.nodes()))
        delta = GraphDelta().remove_node(victim)
        delta.apply_to(mutable)
        report = engine.update(delta)
        assert report.mode == "rebuilt"
        updated = _reach_signature(engine.answer_batch(reach_queries, ALPHA))
        fresh = QueryEngine(mutable, cache_size=0)
        assert updated == _reach_signature(fresh.answer_batch(reach_queries, ALPHA))

    def test_oversized_delta_falls_back_to_rebuild(self, served_graph, reach_queries):
        engine = QueryEngine(served_graph, cache_size=0)
        engine.answer_batch(reach_queries, ALPHA)
        mutable = served_graph.copy()
        delta = _random_delta(random.Random(5), mutable, ops=6)
        delta.apply_to(mutable)
        report = engine.update(delta, patch_threshold=0.0)
        assert report.mode == "rebuilt"
        updated = _reach_signature(engine.answer_batch(reach_queries, ALPHA))
        assert updated == _reach_signature(
            QueryEngine(mutable, cache_size=0).answer_batch(reach_queries, ALPHA)
        )

    def test_process_executor_sees_updated_state(self, served_graph, reach_queries):
        engine = QueryEngine(served_graph, cache_size=0)
        engine.answer_batch(reach_queries, ALPHA)
        mutable = served_graph.copy()
        delta = _random_delta(random.Random(11), mutable, ops=10)
        delta.apply_to(mutable)
        engine.update(delta)
        via_process = engine.answer_batch(reach_queries, ALPHA, executor="process", workers=2)
        fresh = QueryEngine(mutable, cache_size=0)
        assert _reach_signature(via_process) == _reach_signature(
            fresh.answer_batch(reach_queries, ALPHA)
        )

    def test_compaction_preserves_answers(self, served_graph, reach_queries):
        engine = QueryEngine(served_graph, cache_size=0)
        engine.answer_batch(reach_queries, ALPHA)
        mutable = served_graph.copy()
        rng = random.Random(21)
        compacted = False
        for _ in range(6):
            delta = _random_delta(rng, mutable, ops=12)
            delta.apply_to(mutable)
            report = engine.update(delta, compact_threshold=0.02)
            compacted = compacted or report.summary.compacted
        assert compacted, "compaction threshold never tripped"
        updated = _reach_signature(engine.answer_batch(reach_queries, ALPHA))
        assert updated == _reach_signature(
            QueryEngine(mutable, cache_size=0).answer_batch(reach_queries, ALPHA)
        )

    def test_empty_delta_is_noop(self, served_graph):
        engine = QueryEngine(served_graph)
        report = engine.update(GraphDelta())
        assert report.mode == "noop"

    def test_failed_delta_leaves_engine_consistent(self, served_graph, reach_queries):
        engine = QueryEngine(served_graph, cache_size=0)
        engine.answer_batch(reach_queries, ALPHA)
        source = next(iter(served_graph.nodes()))
        bad = GraphDelta().add_node("orphan", "Z").remove_edge("orphan", source)
        with pytest.raises(EdgeNotFoundError):
            engine.update(bad)
        # The applied prefix (the node insert) must be visible and served
        # consistently — equivalently to a fresh engine on the same state.
        mutable = served_graph.copy()
        mutable.add_node("orphan", "Z")
        updated = _reach_signature(engine.answer_batch(reach_queries, ALPHA))
        assert updated == _reach_signature(
            QueryEngine(mutable, cache_size=0).answer_batch(reach_queries, ALPHA)
        )

    def test_failed_delta_drops_stale_cached_answers(self):
        """A failing delta's applied prefix must not be masked by the cache."""
        graph = DiGraph.from_edges([("a", "b"), ("c", "d")])
        engine = QueryEngine(graph, cache_size=16)
        before = engine.answer_batch([ReachQuery("b", "d")], ALPHA)[0]
        assert not before.reachable
        bad = GraphDelta().add_edge("b", "d").remove_edge("a", "d")
        with pytest.raises(EdgeNotFoundError):
            engine.update(bad)
        after = engine.answer_batch([ReachQuery("b", "d")], ALPHA)[0]
        assert after.reachable  # the applied b->d insert is served, not cached-over


def _chain_scc_graph() -> DiGraph:
    """A 12-cycle core with an acyclic fringe (stable, known SCC layout)."""
    graph = DiGraph()
    for index in range(12):
        graph.add_node(index, "C")
    for index in range(12):
        graph.add_edge(index, (index + 1) % 12)
    for index in range(12, 30):
        graph.add_node(index, "F")
        graph.add_edge(index, index % 12)
    for index in range(12, 29):
        graph.add_edge(index + 1, index)
    return graph


class TestCacheInvalidation:
    def test_intra_scc_insert_keeps_untouched_entries_hot(self):
        """The hit-rate contract: touched region evicted, the rest stay hot."""
        graph = _chain_scc_graph()
        engine = QueryEngine(graph, cache_size=256)
        queries = [ReachQuery(source, target) for source in (14, 20, 25) for target in (0, 5)]
        engine.answer_batch(queries, ALPHA)
        assert engine.cache_stats().entries == len(queries)

        # An edge inside the 12-cycle SCC: the condensation, ranks and the
        # whole landmark index are provably unchanged, so only entries
        # anchored on the edge's endpoints may be dropped.
        report = engine.update(GraphDelta().add_edge(0, 6))
        assert report.mode == "patched"
        assert report.summary.reach_alphas_preserved.get(ALPHA) is True
        touched = {0, 6}
        expected_evicted = sum(
            1 for query in queries if query.source in touched or query.target in touched
        )
        assert report.cache_evicted == expected_evicted
        assert report.cache_retained == len(queries) - expected_evicted

        warm = engine.run_batch(queries, ALPHA)
        assert warm.cache_hits == len(queries) - expected_evicted
        assert warm.cache_misses == expected_evicted
        # And the refreshed answers equal a fresh engine's (bit-identical).
        mutable = _chain_scc_graph()
        mutable.add_edge(0, 6)
        fresh = QueryEngine(mutable, cache_size=0)
        assert _reach_signature(warm.answers) == _reach_signature(
            fresh.answer_batch(queries, ALPHA)
        )

    @settings(
        max_examples=10,
        deadline=None,
    )
    @given(edge_index=st.integers(min_value=0, max_value=11))
    def test_eviction_property_over_intra_scc_edges(self, edge_index):
        graph = _chain_scc_graph()
        engine = QueryEngine(graph, cache_size=256)
        queries = [ReachQuery(source, 0) for source in range(12, 30)]
        engine.answer_batch(queries, ALPHA)
        target = (edge_index + 5) % 12
        if graph.has_edge(edge_index, target):
            target = (edge_index + 6) % 12
        report = engine.update(GraphDelta().add_edge(edge_index, target))
        assert report.mode == "patched"
        if report.summary.reach_alphas_preserved.get(ALPHA):
            touched = {edge_index, target}
            untouched = [
                query
                for query in queries
                if query.source not in touched and query.target not in touched
            ]
            assert report.cache_retained == len(untouched)
            warm = engine.run_batch(queries, ALPHA)
            assert warm.cache_hits == len(untouched)

    def test_structural_change_flushes_alpha_partition(self):
        graph = _chain_scc_graph()
        engine = QueryEngine(graph, cache_size=256)
        queries = [ReachQuery(source, 0) for source in range(12, 20)]
        engine.answer_batch(queries, ALPHA)
        # New node + edge changes |G|, hence the size budget and the index:
        # every reachability entry for that α must go.
        report = engine.update(GraphDelta().add_node("w", "Z").add_edge("w", 3))
        assert report.cache_retained == 0

    def test_rebuild_clears_cache(self):
        graph = _chain_scc_graph()
        engine = QueryEngine(graph, cache_size=256)
        queries = [ReachQuery(source, 0) for source in range(12, 20)]
        engine.answer_batch(queries, ALPHA)
        report = engine.update(GraphDelta().remove_node(29))
        assert report.mode == "rebuilt"
        assert report.cache_retained == 0
        assert engine.cache_stats().entries == 0

    def test_pattern_entries_evicted_on_size_change(self, served_graph):
        from repro.workloads.queries import generate_pattern_workload

        workload = generate_pattern_workload(served_graph, shape=(4, 6), count=2, seed=4)
        queries = [PatternQuery(q.pattern, q.personalized_match) for q in workload]
        engine = QueryEngine(served_graph, cache_size=64)
        engine.answer_batch(queries, ALPHA)
        assert engine.cache_stats().entries == len(queries)
        node = next(iter(served_graph.nodes()))
        report = engine.update(GraphDelta().add_node("fresh-node", "Z").add_edge("fresh-node", node))
        assert report.cache_retained == 0

    def test_pattern_entries_survive_distant_relabel(self):
        from repro.graph.traversal import bfs_levels
        from repro.workloads.queries import generate_pattern_workload

        # Sparse enough that pattern balls cannot cover the whole graph.
        graph = preferential_attachment_graph(
            num_nodes=2000, edges_per_node=1, seed=5, back_edge_probability=0.05
        )
        workload = generate_pattern_workload(graph, shape=(3, 3), count=2, seed=4, min_degree=1)
        queries = [PatternQuery(q.pattern, q.personalized_match) for q in workload]
        engine = QueryEngine(graph, cache_size=64)
        engine.answer_batch(queries, ALPHA)
        radius = max(q.pattern.shape()[0] for q in queries)
        near = set()
        for query in queries:
            near |= set(
                bfs_levels(graph, query.personalized_match, max_hops=radius + 1, direction="both")
            )
        far = next(node for node in graph.nodes() if node not in near)
        report = engine.update(GraphDelta().add_node(far, "relabelled"))
        assert report.mode in ("patched", "fresh")
        assert report.cache_retained == len(queries)
        warm = engine.run_batch(queries, ALPHA)
        assert warm.cache_hits == len(queries)


class TestDeltaStream:
    def test_same_seed_same_stream(self, served_graph):
        left = generate_delta_stream(served_graph, batches=4, ops_per_batch=20, seed=9)
        right = generate_delta_stream(served_graph, batches=4, ops_per_batch=20, seed=9)
        assert [delta.ops for delta in left] == [delta.ops for delta in right]

    @pytest.mark.parametrize("mix", ["growth", "uniform"])
    def test_streams_replay_cleanly(self, served_graph, mix):
        stream = generate_delta_stream(served_graph, batches=3, ops_per_batch=15, mix=mix, seed=2)
        mutable = served_graph.copy()
        for delta in stream:
            delta.apply_to(mutable)  # must not raise
        assert mutable == stream.final_graph

    def test_growth_stream_stays_patched(self, served_graph):
        stream = generate_delta_stream(served_graph, batches=3, ops_per_batch=15, mix="growth", seed=2)
        engine = QueryEngine(served_graph)
        engine.prepare(reach_alphas=[ALPHA])
        for delta in stream:
            assert engine.update(delta).mode == "patched"

    def test_node_removals_opt_in(self, served_graph):
        stream = generate_delta_stream(
            served_graph, batches=2, ops_per_batch=30, seed=3, node_removal_rate=0.2
        )
        assert any(delta.has_node_removals() for delta in stream)

    @pytest.mark.parametrize("mix", ["growth", "uniform"])
    @pytest.mark.parametrize("seed", range(6))
    def test_removal_heavy_streams_replay_cleanly(self, mix, seed):
        """Removed nodes must leave every sampling pool (trending, newcomers)."""
        graph = preferential_attachment_graph(num_nodes=30, edges_per_node=2, seed=seed)
        stream = generate_delta_stream(
            graph, batches=3, ops_per_batch=25, mix=mix, seed=seed, node_removal_rate=0.3
        )
        mutable = graph.copy()
        for delta in stream:
            delta.apply_to(mutable)  # must not raise
        assert mutable == stream.final_graph

    def test_rejects_bad_parameters(self, served_graph):
        with pytest.raises(WorkloadError):
            generate_delta_stream(served_graph, mix="burst")
        with pytest.raises(WorkloadError):
            generate_delta_stream(served_graph, batches=0)
        with pytest.raises(WorkloadError):
            generate_delta_stream(served_graph, node_removal_rate=1.5)


class TestCliUpdate:
    def test_update_smoke_with_verify(self, capsys, tmp_path):
        from repro.cli import main

        output = tmp_path / "update.json"
        assert (
            main(
                [
                    "update",
                    "--dataset",
                    "youtube-small",
                    "--batches",
                    "2",
                    "--ops",
                    "15",
                    "--queries",
                    "20",
                    "--verify",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mode=patched" in out
        assert "verify=ok" in out
        import json

        payload = json.loads(output.read_text(encoding="utf-8"))
        assert payload["verify_failures"] == 0
        assert payload["total_ops"] > 0
