"""Tests for subgraph isomorphism (VF2 / VF2OPT) and candidate filters."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import complete_bipartite_graph
from repro.matching.filters import (
    degree_filtered_candidates,
    has_empty_candidate_set,
    label_candidates,
    structural_prune,
)
from repro.matching.vf2 import (
    isomorphic_answer_in_subgraph,
    subgraph_isomorphism,
    vf2_opt,
)
from repro.patterns.pattern import make_pattern


class TestFilters:
    def test_label_candidates_pin_personalized(self, example1_graph, example1_query):
        candidates = label_candidates(example1_query, example1_graph, "Michael")
        assert candidates["Michael"] == {"Michael"}
        assert candidates["CC"] == {"cc1", "cc2", "cc3"}
        assert candidates["CL"] == {"cl1", "cl2", "cl3", "cl4"}

    def test_degree_filter_prunes_low_degree(self, example1_graph, example1_query):
        candidates = degree_filtered_candidates(example1_query, example1_graph, "Michael")
        # CC query node needs out-degree >= 1 (a CL child) and in-degree >= 1.
        assert "cc2" not in candidates["CC"]

    def test_structural_prune_converges_to_matches(self, example1_graph, example1_query):
        candidates = degree_filtered_candidates(example1_query, example1_graph, "Michael")
        pruned = structural_prune(example1_query, example1_graph, candidates)
        assert pruned["CL"] == {"cl3", "cl4"}
        assert pruned["HG"] == {"hg3"}

    def test_has_empty_candidate_set(self):
        assert has_empty_candidate_set({0: set(), 1: {1}})
        assert not has_empty_candidate_set({0: {2}, 1: {1}})


class TestSubgraphIsomorphism:
    def test_example1_answer(self, example1_graph, example1_query):
        result = subgraph_isomorphism(example1_query, example1_graph, "Michael")
        assert result.answer == {"cl3", "cl4"}
        assert result.complete
        assert all(len(set(embedding.values())) == len(embedding) for embedding in result.embeddings)

    def test_embeddings_respect_edges(self, example1_graph, example1_query):
        result = subgraph_isomorphism(example1_query, example1_graph, "Michael")
        for embedding in result.embeddings:
            for source, target in example1_query.edges:
                assert example1_graph.has_edge(embedding[source], embedding[target])

    def test_injectivity_required(self):
        # Pattern with two distinct B children; the data graph has only one B.
        pattern = make_pattern({0: "A", 1: "B", 2: "B"}, [(0, 1), (0, 2)], personalized=0, output=1)
        graph = DiGraph()
        graph.add_node("a", "A")
        graph.add_node("b", "B")
        graph.add_edge("a", "b")
        assert subgraph_isomorphism(pattern, graph, "a").answer == set()

    def test_two_b_children_found_when_present(self):
        pattern = make_pattern({0: "A", 1: "B", 2: "B"}, [(0, 1), (0, 2)], personalized=0, output=1)
        graph = DiGraph()
        graph.add_node("a", "A")
        graph.add_node("b1", "B")
        graph.add_node("b2", "B")
        graph.add_edge("a", "b1")
        graph.add_edge("a", "b2")
        assert subgraph_isomorphism(pattern, graph, "a").answer == {"b1", "b2"}

    def test_missing_personalized_match(self, example1_graph, example1_query):
        assert subgraph_isomorphism(example1_query, example1_graph, "nobody").answer == set()

    def test_embedding_cap_marks_incomplete(self):
        graph = complete_bipartite_graph(4, 6)
        pattern = make_pattern(
            {0: "L", 1: "R", 2: "R"}, [(0, 1), (0, 2)], personalized=0, output=1
        )
        result = subgraph_isomorphism(pattern, graph, ("l", 0), max_embeddings=5)
        assert len(result.embeddings) == 5
        assert not result.complete

    def test_isomorphism_stricter_than_simulation(self, example1_graph):
        # Strong simulation allows one data node to play several roles along a
        # cycle; isomorphism needs distinct nodes.  Pattern: Michael with two
        # distinct HG friends — the data graph has three, so both semantics
        # succeed, but requiring four distinct CC fails for isomorphism.
        pattern = make_pattern(
            {"m": "Michael", "c1": "CC", "c2": "CC", "c3": "CC", "c4": "CC"},
            [("m", "c1"), ("m", "c2"), ("m", "c3"), ("m", "c4")],
            personalized="m",
            output="c1",
        )
        assert subgraph_isomorphism(pattern, example1_graph, "Michael").answer == set()


class TestVF2Opt:
    def test_vf2opt_matches_unrestricted_answer(self, example1_graph, example1_query):
        unrestricted = subgraph_isomorphism(example1_query, example1_graph, "Michael").answer
        optimised = vf2_opt(example1_query, example1_graph, "Michael")
        assert optimised.answer == unrestricted
        assert optimised.ball_size > 0

    def test_vf2opt_missing_personalized(self, example1_graph, example1_query):
        assert vf2_opt(example1_query, example1_graph, "nobody").answer == set()

    def test_answer_in_subgraph_helper(self, example1_graph, example1_query):
        from repro.graph.subgraph import induced_subgraph

        subgraph = induced_subgraph(example1_graph, ["Michael", "cc1", "hg3", "cl3"])
        assert isomorphic_answer_in_subgraph(example1_query, subgraph, "Michael") == {"cl3"}
        assert isomorphic_answer_in_subgraph(example1_query, DiGraph(), "Michael") == set()
