"""Tests for guarded conditions and the cost/potential weight estimator."""

import pytest

from repro.core.weights import IsomorphismGuard, SimulationGuard, WeightEstimator
from repro.graph.digraph import DiGraph
from repro.graph.neighborhood import NeighborhoodIndex
from repro.patterns.pattern import make_pattern


@pytest.fixture
def sim_guard(example1_graph, example1_query):
    return SimulationGuard(
        example1_query, example1_graph, "Michael", NeighborhoodIndex(example1_graph)
    )


@pytest.fixture
def iso_guard(example1_graph, example1_query):
    return IsomorphismGuard(
        example1_query, example1_graph, "Michael", NeighborhoodIndex(example1_graph)
    )


class TestSimulationGuard:
    def test_personalized_pinned_by_identity(self, sim_guard):
        assert sim_guard.check("Michael", "Michael")
        assert not sim_guard.check("cc1", "Michael")

    def test_label_mismatch_fails(self, sim_guard):
        assert not sim_guard.check("hg1", "CC")

    def test_cc_without_cl_child_fails(self, sim_guard):
        # The paper's Example 4: cc2 is ruled out because it has no CL child.
        assert sim_guard.check("cc1", "CC")
        assert sim_guard.check("cc3", "CC")
        assert not sim_guard.check("cc2", "CC")

    def test_cl_needs_cc_and_hg_parents(self, sim_guard):
        assert sim_guard.check("cl3", "CL")
        assert sim_guard.check("cl4", "CL")
        assert not sim_guard.check("cl2", "CL")  # no parents at all
        assert not sim_guard.check("cl1", "CL")  # HG parent only

    def test_guard_is_necessary_not_sufficient(self, example1_graph, example1_query, sim_guard):
        # hg1 passes the guard (Michael parent + CL child) but is not a match
        # because its CL child is not itself a match — the guard only filters.
        assert sim_guard.check("hg1", "HG")

    def test_personalized_neighbor_requirement(self, example1_graph):
        # Query node whose parent is the personalized node: candidates must be
        # actual children of vp, not just have some Michael-labelled parent.
        pattern = make_pattern(
            {"m": "Michael", "c": "CC"}, [("m", "c")], personalized="m", output="c"
        )
        guard = SimulationGuard(pattern, example1_graph, "Michael", NeighborhoodIndex(example1_graph))
        assert guard.check("cc1", "c")

    def test_results_are_memoised(self, sim_guard):
        assert sim_guard.check("cc1", "CC")
        assert ("cc1", "CC") in sim_guard._cache
        assert sim_guard.check("cc1", "CC")  # second call hits the cache


class TestIsomorphismGuard:
    def test_degree_requirement(self, iso_guard):
        # CC needs at least one parent and one child in the data graph.
        assert iso_guard.check("cc1", "CC")
        assert not iso_guard.check("cc2", "CC")

    def test_label_mismatch_fails(self, iso_guard):
        assert not iso_guard.check("hg1", "CC")

    def test_distinct_neighbor_requirement(self):
        # Query: A with two distinct B children; data node with a single B
        # child fails the distinctness check even though a label exists.
        pattern = make_pattern({0: "A", 1: "B", 2: "B"}, [(0, 1), (0, 2)], personalized=0, output=1)
        graph = DiGraph()
        graph.add_node("a1", "A")
        graph.add_node("b", "B")
        graph.add_edge("a1", "b")
        graph.add_node("a2", "A")
        graph.add_node("b1", "B")
        graph.add_node("b2", "B")
        graph.add_edge("a2", "b1")
        graph.add_edge("a2", "b2")
        guard = IsomorphismGuard(pattern, graph, "a1", NeighborhoodIndex(graph))
        assert not guard.check("a1", 0)
        guard2 = IsomorphismGuard(pattern, graph, "a2", NeighborhoodIndex(graph))
        assert guard2.check("a2", 0)

    def test_degree_dominance_of_neighbors(self):
        # The query child has degree 2, so the data child must have degree >= 2.
        pattern = make_pattern(
            {0: "A", 1: "B", 2: "C"}, [(0, 1), (1, 2)], personalized=0, output=2
        )
        graph = DiGraph()
        graph.add_node("a", "A")
        graph.add_node("b_low", "B")
        graph.add_edge("a", "b_low")  # b_low has degree 1 < 2
        guard = IsomorphismGuard(pattern, graph, "a", NeighborhoodIndex(graph))
        assert not guard.check("a", 0)


class TestWeightEstimator:
    def test_cost_drops_as_gq_grows(self, example1_graph, example1_query, sim_guard):
        estimator = WeightEstimator(example1_query, example1_graph, sim_guard)
        empty_cost = estimator.cost("cc1", "CC", in_gq=set())
        partial_cost = estimator.cost("cc1", "CC", in_gq={"Michael", "cl3"})
        assert empty_cost >= partial_cost
        assert partial_cost == 0

    def test_potential_counts_useful_neighbors(self, example1_graph, example1_query, sim_guard):
        estimator = WeightEstimator(example1_query, example1_graph, sim_guard)
        # cc3's neighbours outside G_Q: Michael (candidate for Michael query
        # node? no — pinned), cl3, cl4 (candidates for CL).
        potential = estimator.potential("cc3", "CC", in_gq=set())
        assert potential >= 2

    def test_potential_excludes_gq_members(self, example1_graph, example1_query, sim_guard):
        estimator = WeightEstimator(example1_query, example1_graph, sim_guard)
        full = estimator.potential("cc3", "CC", in_gq=set())
        reduced = estimator.potential("cc3", "CC", in_gq={"cl3", "cl4"})
        assert reduced < full

    def test_weight_prefers_high_potential_low_cost(self, example1_graph, example1_query, sim_guard):
        estimator = WeightEstimator(example1_query, example1_graph, sim_guard)
        weight_cc3 = estimator.weight("cc3", "CC", in_gq={"Michael"})
        weight_cc2 = estimator.weight("cc2", "CC", in_gq={"Michael"})
        assert weight_cc3 > weight_cc2

    def test_scan_cap_bounds_potential(self, example1_graph, example1_query, sim_guard):
        estimator = WeightEstimator(example1_query, example1_graph, sim_guard, max_scan=1)
        assert estimator.potential("cc3", "CC", in_gq=set()) <= 1
