"""Tests for the dataset registry and alpha rescaling."""

import pytest

from repro.exceptions import WorkloadError
from repro.workloads.datasets import (
    YAHOO_PAPER_SIZE,
    YOUTUBE_PAPER_SIZE,
    available_datasets,
    dataset_spec,
    load_dataset,
    scale_alpha,
    synthetic,
    synthetic_series,
    yahoo_like,
    youtube_like,
)


class TestSurrogates:
    def test_youtube_like_shape(self):
        graph = youtube_like(num_nodes=2000)
        assert graph.num_nodes() == 2000
        # Average degree close to the Youtube crawl's ~2.8.
        assert 1.5 <= graph.num_edges() / graph.num_nodes() <= 4.0

    def test_yahoo_like_is_denser_than_youtube(self):
        youtube = youtube_like(num_nodes=2000)
        yahoo = yahoo_like(num_nodes=2000)
        assert yahoo.num_edges() / yahoo.num_nodes() > youtube.num_edges() / youtube.num_nodes()

    def test_surrogates_are_deterministic(self):
        assert youtube_like(seed=3, num_nodes=500) == youtube_like(seed=3, num_nodes=500)

    def test_synthetic_follows_paper_parameters(self):
        graph = synthetic(1500)
        assert graph.num_nodes() == 1500
        assert graph.num_edges() == 3000
        assert len(graph.distinct_labels()) <= 15

    def test_synthetic_series_sizes(self):
        series = synthetic_series([500, 1000])
        assert set(series) == {500, 1000}
        assert series[500].num_nodes() == 500


class TestRegistry:
    def test_available_datasets(self):
        names = available_datasets()
        assert {"youtube", "yahoo", "youtube-small", "yahoo-small"} <= set(names)

    def test_dataset_spec_lookup(self):
        spec = dataset_spec("youtube-small")
        assert spec.paper_size == YOUTUBE_PAPER_SIZE
        graph = spec.build(seed=1)
        assert graph.num_nodes() > 0

    def test_unknown_dataset_raises(self):
        with pytest.raises(WorkloadError):
            dataset_spec("not-a-dataset")

    def test_load_dataset(self):
        graph = load_dataset("yahoo-small")
        assert graph.num_nodes() == 4000


class TestScaleAlpha:
    def test_keeps_absolute_budget(self):
        scaled = scale_alpha(0.000015, YOUTUBE_PAPER_SIZE, 60_000)
        assert scaled * 60_000 == pytest.approx(0.000015 * YOUTUBE_PAPER_SIZE, rel=1e-6)

    def test_clamped_to_unit_interval(self):
        assert scale_alpha(0.5, YAHOO_PAPER_SIZE, 10) == 1.0
        assert scale_alpha(1e-12, 100, 1_000_000) >= 1e-6

    def test_invalid_sizes_raise(self):
        with pytest.raises(WorkloadError):
            scale_alpha(0.1, 0, 100)
        with pytest.raises(WorkloadError):
            scale_alpha(0.1, 100, 0)
