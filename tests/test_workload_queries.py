"""Tests for the query workload generators."""

import pytest

from repro.exceptions import WorkloadError
from repro.graph.digraph import DiGraph
from repro.graph.traversal import bidirectional_reachable
from repro.matching.strong_simulation import strong_simulation
from repro.workloads.queries import (
    PAPER_QUERY_SHAPES,
    generate_pattern_workload,
    generate_reachability_workload,
)


class TestPatternWorkload:
    def test_requested_count_and_shape(self, small_social_graph):
        workload = generate_pattern_workload(small_social_graph, shape=(4, 6), count=4, seed=1)
        assert len(workload) == 4
        assert workload.shape == (4, 6)
        for query in workload:
            assert query.pattern.num_nodes() == 4
            assert query.shape[0] == 4

    def test_queries_have_nonempty_exact_answers(self, small_social_graph):
        workload = generate_pattern_workload(small_social_graph, shape=(4, 5), count=3, seed=2)
        for query in workload:
            result = strong_simulation(query.pattern, small_social_graph, query.personalized_match)
            assert result.answer

    def test_personalized_matches_exist_in_graph(self, small_social_graph):
        workload = generate_pattern_workload(small_social_graph, shape=(5, 7), count=3, seed=3)
        for query in workload:
            assert query.personalized_match in small_social_graph

    def test_deterministic_for_seed(self, small_social_graph):
        first = generate_pattern_workload(small_social_graph, shape=(4, 5), count=2, seed=9)
        second = generate_pattern_workload(small_social_graph, shape=(4, 5), count=2, seed=9)
        assert [q.personalized_match for q in first] == [q.personalized_match for q in second]

    def test_too_small_shape_rejected(self, small_social_graph):
        with pytest.raises(WorkloadError):
            generate_pattern_workload(small_social_graph, shape=(1, 0), count=1)

    def test_impossible_workload_raises(self):
        tiny = DiGraph.from_edges([(0, 1)], labels={0: "A", 1: "B"})
        with pytest.raises(WorkloadError):
            generate_pattern_workload(tiny, shape=(6, 10), count=2, seed=1)

    def test_paper_shapes_constant(self):
        assert PAPER_QUERY_SHAPES[0] == (4, 8)
        assert PAPER_QUERY_SHAPES[-1] == (8, 16)
        assert all(edges == 2 * nodes for nodes, edges in PAPER_QUERY_SHAPES)


class TestReachabilityWorkload:
    def test_count_and_truth_recorded(self, small_social_graph):
        workload = generate_reachability_workload(small_social_graph, count=40, seed=1)
        assert len(workload) >= 30
        assert set(workload.truth) == set(workload.pairs)

    def test_ground_truth_is_correct(self, small_social_graph):
        workload = generate_reachability_workload(small_social_graph, count=30, seed=2)
        for pair in workload.pairs:
            assert workload.truth[pair] == bidirectional_reachable(small_social_graph, *pair)

    def test_positive_fraction_roughly_respected(self, small_social_graph):
        workload = generate_reachability_workload(
            small_social_graph, count=40, positive_fraction=0.5, seed=3
        )
        positives = workload.positives()
        assert 0.3 * len(workload) <= positives <= 0.7 * len(workload)

    def test_all_negative_workload(self, small_social_graph):
        workload = generate_reachability_workload(
            small_social_graph, count=20, positive_fraction=0.0, seed=4
        )
        assert workload.positives() == 0

    def test_all_positive_workload(self, small_social_graph):
        workload = generate_reachability_workload(
            small_social_graph, count=20, positive_fraction=1.0, seed=5
        )
        assert workload.positives() == len(workload)

    def test_no_self_pairs(self, small_social_graph):
        workload = generate_reachability_workload(small_social_graph, count=30, seed=6)
        assert all(source != target for source, target in workload.pairs)

    def test_invalid_parameters(self, small_social_graph):
        with pytest.raises(WorkloadError):
            generate_reachability_workload(small_social_graph, count=0)
        with pytest.raises(WorkloadError):
            generate_reachability_workload(small_social_graph, count=10, positive_fraction=1.5)

    def test_graph_too_small_raises(self):
        graph = DiGraph()
        graph.add_node(1, "A")
        with pytest.raises(WorkloadError):
            generate_reachability_workload(graph, count=5)

    def test_deterministic_for_seed(self, small_social_graph):
        first = generate_reachability_workload(small_social_graph, count=20, seed=8)
        second = generate_reachability_workload(small_social_graph, count=20, seed=8)
        assert first.pairs == second.pairs
