#!/usr/bin/env python
"""Machine-readable benchmark reports plus the CI regression gate.

Runs eight quick smoke suites and writes one JSON report each:

* ``BENCH_engine.json`` — the batched query engine: serial vs process-pool
  vs warm-daemon-pool throughput on an RBReach batch, the daemon-backed
  parallel speedup, LRU-cache behaviour;
* ``BENCH_backend.json`` — DiGraph vs CSRGraph on the BFS-heavy traversal
  suite and the end-to-end RBReach experiment loop;
* ``BENCH_updates.json`` — incremental ``QueryEngine.update`` vs a full
  re-prepare on ≤1% delta batches, plus update throughput;
* ``BENCH_shard.json`` — the sharded serving layer: contract witnesses
  (never-false-positive, k=1 bit-parity), greedy-vs-hash cut quality and
  scatter–gather throughput vs the unsharded engine;
* ``BENCH_service.json`` — the ``GraphService`` façade: ≤5% overhead vs
  the raw engine on warm batches, planner-vs-naive-serial speedup, and the
  bit-parity witnesses of the routing contract;
* ``BENCH_latency.json`` — open-loop tail latency (p50/p99/p999) of the
  async front-end under seeded Poisson and burst arrival schedules;
* ``BENCH_kernels.json`` — the word-parallel bitset kernel tier: one
  multi-source ``reach_batch`` sweep vs a per-source ``reach_mask`` loop,
  plain and absorbing (landmark-style stop sets), with bit-parity gated;
* ``BENCH_subscriptions.json`` — standing-query maintenance: the shared
  invalidation oracle re-evaluating only affected subscriptions vs naively
  re-answering all of them per delta, with both parity witnesses gated.

Each report carries a ``gates`` table naming the metrics CI guards.  Gated
metrics are deliberately *relative* (speedups, hit rates, 0/1 correctness
witnesses): they transfer across runner generations, unlike absolute wall
times, which are recorded for information only — with one exception: the
latency suite gates absolute p99 milliseconds, because tail latency *is*
its deliverable (the committed ceilings are hand-relaxed well above any
healthy runner's numbers).  A report may also carry a ``skipped`` table
(metric → reason): metrics a runner physically cannot exhibit — pool
speedups on a 1–2 core box — are recorded for the trajectory but excluded
from gating, instead of letting a <1x "speedup" read as a regression.
``--check`` compares the
fresh numbers against the committed baselines in ``benchmarks/baselines/``
and fails when any gated metric regresses by more than ``--tolerance``
(default 30%).  After an intentional performance change, refresh the
baselines with ``--update`` — which also *creates* a baseline file that
does not exist yet (the bootstrap path for a newly registered suite).

Usage:
    python tools/bench_report.py                 # run suites, write reports
    python tools/bench_report.py --check         # ... and enforce the gate
    python tools/bench_report.py --update        # ... and rewrite baselines
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

DEFAULT_OUTPUT_DIR = ROOT / "benchmarks" / "_reports"
DEFAULT_BASELINE_DIR = ROOT / "benchmarks" / "baselines"
DEFAULT_TOLERANCE = 0.30

SEED = 7
ENGINE_ALPHA = 0.1
ENGINE_QUERIES = 1500
BACKEND_TRAVERSAL_SOURCES = 8
BACKEND_RBREACH_QUERIES = 200


def _cores() -> int:
    from repro.engine import default_workers

    return default_workers()


def _environment() -> dict:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cores": _cores(),
    }


# --------------------------------------------------------------------------- #
# Suites
# --------------------------------------------------------------------------- #
def engine_suite() -> dict:
    """Serial vs process vs warm-daemon batched answering plus cache behaviour."""
    from repro.engine import QueryEngine, ReachQuery
    from repro.workloads.datasets import load_dataset
    from repro.workloads.queries import sample_mixed_pairs

    graph = load_dataset("yahoo-small", seed=SEED)
    queries = [
        ReachQuery(source, target)
        for source, target in sample_mixed_pairs(graph, ENGINE_QUERIES, seed=SEED)
    ]

    engine = QueryEngine(graph, cache_size=0)
    started = time.perf_counter()
    engine.prepare(reach_alphas=[ENGINE_ALPHA])
    prepare_seconds = time.perf_counter() - started

    serial = engine.run_batch(queries, ENGINE_ALPHA)
    workers = min(4, max(2, _cores()))
    process = engine.run_batch(queries, ENGINE_ALPHA, executor="process", workers=workers)
    if [a.reachable for a in serial.answers] != [a.reachable for a in process.answers]:
        raise SystemExit("engine suite: process executor diverged from serial answers")
    process_speedup = (
        process.throughput / serial.throughput if serial.throughput > 0 else 0.0
    )
    # Warm the daemon pool first (one-off spawn + shared-state publication),
    # then time a steady-state batch: this is the path the auto planner
    # routes large batches through, so parallel_speedup is daemon-backed.
    engine.run_batch(queries[: len(queries) // 4], ENGINE_ALPHA, executor="daemon", workers=workers)
    daemon = engine.run_batch(queries, ENGINE_ALPHA, executor="daemon", workers=workers)
    engine.close()
    if [a.reachable for a in serial.answers] != [a.reachable for a in daemon.answers]:
        raise SystemExit("engine suite: daemon executor diverged from serial answers")
    daemon_speedup = (
        daemon.throughput / serial.throughput if serial.throughput > 0 else 0.0
    )
    parallel_speedup = daemon_speedup

    cached = QueryEngine(graph, cache_size=len(queries) + 1)
    cached.prepare(reach_alphas=[ENGINE_ALPHA])
    cold = cached.run_batch(queries, ENGINE_ALPHA)
    warm = cached.run_batch(queries, ENGINE_ALPHA)
    cache_speedup = (
        cold.wall_seconds / warm.wall_seconds if warm.wall_seconds > 0 else float("inf")
    )
    cache_hit_rate = warm.cache_hits / max(1, len(queries))

    report = {
        "suite": "engine",
        "schema_version": 1,
        "environment": _environment(),
        "config": {
            "dataset": "yahoo-small",
            "alpha": ENGINE_ALPHA,
            "queries": ENGINE_QUERIES,
            "workers": workers,
        },
        "metrics": {
            "prepare_seconds": round(prepare_seconds, 4),
            "serial_wall_seconds": round(serial.wall_seconds, 4),
            "serial_qps": round(serial.throughput, 1),
            "process_wall_seconds": round(process.wall_seconds, 4),
            "process_qps": round(process.throughput, 1),
            "process_speedup": round(process_speedup, 3),
            "daemon_wall_seconds": round(daemon.wall_seconds, 4),
            "daemon_qps": round(daemon.throughput, 1),
            "daemon_speedup": round(daemon_speedup, 3),
            "parallel_speedup": round(parallel_speedup, 3),
            "cache_warm_wall_seconds": round(warm.wall_seconds, 5),
            "cache_speedup": round(min(cache_speedup, 1000.0), 1),
            "cache_hit_rate": round(cache_hit_rate, 3),
        },
        # Relative metrics only: absolute q/s depends on the runner and is
        # informational.  parallel_speedup (the warm daemon pool — the auto
        # planner's parallel route) is gated against a conservative committed
        # floor so faster CI runners only ever raise the bar; the per-batch
        # process-pool speedup stays informational.
        "gates": {
            "parallel_speedup": "higher",
            "daemon_speedup": "higher",
            "cache_speedup": "higher",
            "cache_hit_rate": "higher",
        },
    }
    cores = _cores()
    if cores < 4:
        # A 1–2 core runner physically cannot exhibit a pool speedup.  The
        # raw values still go to the trajectory, but tagged as skipped and
        # dropped from the gates, so a <1x "speedup" is never read as a
        # regression (the answers-parity checks above ran regardless).
        reason = "single-core" if cores == 1 else f"only {cores} cores"
        report["skipped"] = {
            "parallel_speedup": reason,
            "daemon_speedup": reason,
        }
        for metric in report["skipped"]:
            report["gates"].pop(metric, None)
    return report


def backend_suite() -> dict:
    """DiGraph vs CSRGraph on traversal and the RBReach experiment loop."""
    from repro.graph import traversal as tr
    from repro.graph.csr import CSRGraph
    from repro.reachability.rbreach import RBReach
    from repro.workloads.datasets import yahoo_like
    from repro.workloads.queries import generate_reachability_workload

    digraph = yahoo_like(seed=SEED)
    csr = CSRGraph.from_digraph(digraph)
    rng = random.Random(SEED)
    nodes = list(digraph.nodes())
    sources = [rng.choice(nodes) for _ in range(BACKEND_TRAVERSAL_SOURCES)]
    pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(20)]

    def traversal_suite(graph):
        levels = [tr.bfs_levels(graph, source) for source in sources]
        upstream = [tr.ancestors(graph, source) for source in sources]
        oracle = [tr.bidirectional_reachable(graph, s, t) for s, t in pairs]
        return levels, upstream, oracle

    def timed(fn, rounds=2):
        best = float("inf")
        result = None
        for _ in range(rounds):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        return result, best

    traversal_suite(digraph)
    traversal_suite(csr)  # warm both paths before timing
    base_result, digraph_traversal = timed(lambda: traversal_suite(digraph))
    csr_result, csr_traversal = timed(lambda: traversal_suite(csr))
    if base_result != csr_result:
        raise SystemExit("backend suite: traversal results diverged between backends")
    traversal_speedup = digraph_traversal / csr_traversal if csr_traversal > 0 else 0.0

    def rbreach_loop(graph):
        workload = generate_reachability_workload(
            graph, count=BACKEND_RBREACH_QUERIES, seed=SEED
        )
        matcher = RBReach.from_graph(graph, alpha=0.01)
        answers = {pair: matcher.query(*pair).reachable for pair in workload.pairs}
        return sum(1 for pair, truth in workload.truth.items() if answers[pair] == truth)

    base_correct, digraph_rbreach = timed(lambda: rbreach_loop(digraph))
    csr_correct, csr_rbreach = timed(lambda: rbreach_loop(csr))
    if base_correct != csr_correct:
        raise SystemExit("backend suite: RBReach answers diverged between backends")
    rbreach_speedup = digraph_rbreach / csr_rbreach if csr_rbreach > 0 else 0.0

    return {
        "suite": "backend",
        "schema_version": 1,
        "environment": _environment(),
        "config": {
            "dataset": "yahoo-like",
            "traversal_sources": BACKEND_TRAVERSAL_SOURCES,
            "rbreach_queries": BACKEND_RBREACH_QUERIES,
        },
        "metrics": {
            "digraph_traversal_seconds": round(digraph_traversal, 4),
            "csr_traversal_seconds": round(csr_traversal, 4),
            "csr_traversal_speedup": round(traversal_speedup, 3),
            "digraph_rbreach_seconds": round(digraph_rbreach, 4),
            "csr_rbreach_seconds": round(csr_rbreach, 4),
            "csr_rbreach_speedup": round(rbreach_speedup, 3),
        },
        "gates": {
            "csr_traversal_speedup": "higher",
            "csr_rbreach_speedup": "higher",
        },
    }


def updates_suite() -> dict:
    """Incremental update maintenance vs full re-preparation."""
    import sys as _sys

    bench_dir = str(ROOT / "benchmarks")
    if bench_dir not in _sys.path:
        _sys.path.insert(0, bench_dir)
    from bench_updates_incremental import measure_incremental_update

    metrics = measure_incremental_update(seed=SEED)
    return {
        "suite": "updates",
        "schema_version": 1,
        "environment": _environment(),
        "config": {
            "dataset": metrics["dataset"],
            "alpha": metrics["alpha"],
            "delta_fraction": metrics["delta_fraction"],
            "ops_per_batch": metrics["ops_per_batch"],
            "batches": metrics["batches"],
        },
        "metrics": {
            "initial_prepare_seconds": metrics["initial_prepare_seconds"],
            "bootstrap_update_seconds": metrics["bootstrap_update_seconds"],
            "warm_update_seconds": metrics["warm_update_seconds"],
            "full_prepare_seconds": metrics["full_prepare_seconds"],
            "incremental_speedup": metrics["incremental_speedup"],
            "updates_per_second": metrics["updates_per_second"],
            "patched_batches": metrics["modes"].get("patched", 0),
            "rebuild_equivalent": int(metrics["rebuild_equivalent"]),
        },
        # incremental_speedup is the headline relative metric;
        # rebuild_equivalent is a hard 0/1 correctness witness (any drop
        # below 1 fails the gate outright at every tolerance).
        "gates": {
            "incremental_speedup": "higher",
            "rebuild_equivalent": "higher",
        },
    }


def shard_suite() -> dict:
    """Sharded scatter–gather serving vs the single-graph engine."""
    import sys as _sys

    bench_dir = str(ROOT / "benchmarks")
    if bench_dir not in _sys.path:
        _sys.path.insert(0, bench_dir)
    from bench_shard_scatter import measure_shard_scatter

    metrics = measure_shard_scatter(seed=SEED)
    report = {
        "suite": "shard",
        "schema_version": 1,
        "environment": _environment(),
        "config": {
            "dataset": metrics["dataset"],
            "alpha": metrics["alpha"],
            "num_shards": metrics["num_shards"],
            "queries": metrics["queries"],
        },
        "metrics": {
            "greedy_cut_fraction": metrics["greedy_cut_fraction"],
            "hash_cut_fraction": metrics["hash_cut_fraction"],
            "cut_improvement": metrics["cut_improvement"],
            "same_shard_fraction": metrics["same_shard_fraction"],
            "spillover_fraction": metrics["spillover_fraction"],
            "unsharded_qps": metrics["unsharded_qps"],
            "sharded_serial_qps": metrics["sharded_serial_qps"],
            "sharded_process_qps": metrics["sharded_process_qps"],
            "sharded_daemon_qps": metrics["sharded_daemon_qps"],
            "sharded_serial_speedup": metrics["sharded_serial_speedup"],
            "shard_speedup": metrics["shard_speedup"],
            "daemon_speedup": metrics["daemon_speedup"],
            "k1_parity": metrics["k1_parity"],
            "no_false_positives": metrics["no_false_positives"],
        },
        # The two 0/1 witnesses are hard correctness gates (any drop fails at
        # every tolerance); cut_improvement and the *serial* shard speedup
        # are relative and runner-independent.  The process- and daemon-pool
        # speedups are informational only — they depend on the runner's core
        # count, which bench_shard_scatter gates separately (with a skip
        # below 4 cores).
        "gates": {
            "no_false_positives": "higher",
            "k1_parity": "higher",
            "cut_improvement": "higher",
            "sharded_serial_speedup": "higher",
        },
    }
    if metrics["cores"] < 4:
        # Informational, never gated — but tag them so the trajectory does
        # not read this runner's <1x pool numbers as a performance story.
        reason = (
            "single-core" if metrics["cores"] == 1 else f"only {metrics['cores']} cores"
        )
        report["skipped"] = {"shard_speedup": reason, "daemon_speedup": reason}
    return report


def service_suite() -> dict:
    """The GraphService façade vs the raw engine, plus planner quality."""
    import sys as _sys

    bench_dir = str(ROOT / "benchmarks")
    if bench_dir not in _sys.path:
        _sys.path.insert(0, bench_dir)
    from bench_service_facade import measure_service_facade

    metrics = measure_service_facade(seed=SEED)
    return {
        "suite": "service",
        "schema_version": 1,
        "environment": _environment(),
        "config": {
            "dataset": metrics["dataset"],
            "alpha": metrics["alpha"],
            "queries": metrics["queries"],
        },
        "metrics": {
            "direct_wall_seconds": metrics["direct_wall_seconds"],
            "service_wall_seconds": metrics["service_wall_seconds"],
            "facade_overhead": metrics["facade_overhead"],
            "facade_efficiency": metrics["facade_efficiency"],
            "cache_hit_overhead": metrics["cache_hit_overhead"],
            "metrics_overhead": metrics["metrics_overhead"],
            "planner_speedup": metrics["planner_speedup"],
            "facade_parity": metrics["facade_parity"],
            "planner_parity": metrics["planner_parity"],
        },
        # The two parity witnesses are hard 0/1 correctness gates.
        # facade_efficiency (direct/service wall, ~1.0 when the façade is
        # free) and planner_speedup (naive serial / planner choice) are the
        # relative, runner-independent floors; the raw walls and the
        # cache-hit-path overhead are informational.  The hard ≤5% overhead
        # bar itself is asserted by bench_service_facade.py in bench-smoke.
        "gates": {
            "facade_parity": "higher",
            "planner_parity": "higher",
            "facade_efficiency": "higher",
            "planner_speedup": "higher",
        },
    }


def kernels_suite() -> dict:
    """Multi-source batched bitset BFS vs the per-source reach_mask loop."""
    import sys as _sys

    bench_dir = str(ROOT / "benchmarks")
    if bench_dir not in _sys.path:
        _sys.path.insert(0, bench_dir)
    from bench_kernels_batched import measure_kernels_batched

    metrics = measure_kernels_batched(seed=SEED)
    return {
        "suite": "kernels",
        "schema_version": 1,
        "environment": _environment(),
        "config": {
            "dataset": metrics["dataset"],
            "num_sources": metrics["num_sources"],
            "num_nodes": metrics["num_nodes"],
        },
        "metrics": {
            "batched_parity": metrics["batched_parity"],
            "batched_speedup": metrics["batched_speedup"],
            "batched_loop_seconds": metrics["batched_loop_seconds"],
            "batched_batch_seconds": metrics["batched_batch_seconds"],
            "absorbing_parity": metrics["absorbing_parity"],
            "absorbing_speedup": metrics["absorbing_speedup"],
            "absorbing_loop_seconds": metrics["absorbing_loop_seconds"],
            "absorbing_batch_seconds": metrics["absorbing_batch_seconds"],
        },
        # The two parity witnesses are hard 0/1 correctness gates (any drop
        # fails at every tolerance): a fast-but-wrong sweep must never pass.
        # The speedups are single-process and word-parallel — no pool, no
        # core-count dependence — so they gate on every runner.
        "gates": {
            "batched_parity": "higher",
            "absorbing_parity": "higher",
            "batched_speedup": "higher",
            "absorbing_speedup": "higher",
        },
    }


def latency_suite() -> dict:
    """Open-loop tail latency of the async front-end under arrival schedules."""
    import sys as _sys

    bench_dir = str(ROOT / "benchmarks")
    if bench_dir not in _sys.path:
        _sys.path.insert(0, bench_dir)
    from bench_service_latency import measure_service_latency

    metrics = measure_service_latency(seed=SEED)
    return {
        "suite": "latency",
        "schema_version": 1,
        "environment": _environment(),
        "config": {
            "dataset": metrics["dataset"],
            "alpha": metrics["alpha"],
            "duration_seconds": metrics["duration_seconds"],
            "rates": metrics["rates"],
        },
        "metrics": {
            key: value
            for key, value in metrics.items()
            if key.startswith(("poisson_", "burst_"))
        },
        # The one suite gating absolute wall time: tail latency in
        # milliseconds *is* the deliverable, and the measurement is open-loop
        # (latency from the scheduled arrival, so backlog counts).  The
        # committed ceilings are hand-relaxed far above a healthy runner's
        # numbers — see the baseline's note — so only a real serving
        # regression (or a pathological runner) trips them.
        "gates": {
            "poisson_50_p99_ms": "lower",
            "poisson_200_p99_ms": "lower",
        },
    }


def subscriptions_suite() -> dict:
    """Standing-query maintenance vs naive per-delta re-answering."""
    import sys as _sys

    bench_dir = str(ROOT / "benchmarks")
    if bench_dir not in _sys.path:
        _sys.path.insert(0, bench_dir)
    from bench_subscriptions import measure_subscriptions

    metrics = measure_subscriptions(seed=SEED)
    return {
        "suite": "subscriptions",
        "schema_version": 1,
        "environment": _environment(),
        "config": {
            "alpha": metrics["alpha"],
            "graph_size": metrics["graph_size"],
            "subscriptions": metrics["subscriptions"],
            "batches": metrics["batches"],
            "ops_per_batch": metrics["ops_per_batch"],
        },
        "metrics": {
            "affected_fraction": metrics["affected_fraction"],
            "maintenance_seconds": metrics["maintenance_seconds"],
            "naive_seconds": metrics["naive_seconds"],
            "maintenance_speedup": metrics["maintenance_speedup"],
            "changed": metrics["changed"],
            "parity": int(metrics["parity"]),
            "replay_parity": int(metrics["replay_parity"]),
        },
        # maintenance_speedup is the headline relative metric;
        # affected_fraction is gated *lower* (over-invalidation erodes the
        # skip rate long before it breaks correctness); the two parity
        # witnesses are hard 0/1 gates — any drop below 1 fails outright.
        "gates": {
            "maintenance_speedup": "higher",
            "affected_fraction": "lower",
            "parity": "higher",
            "replay_parity": "higher",
        },
    }


SUITES = {
    "engine": engine_suite,
    "backend": backend_suite,
    "updates": updates_suite,
    "shard": shard_suite,
    "service": service_suite,
    "latency": latency_suite,
    "kernels": kernels_suite,
    "subscriptions": subscriptions_suite,
}


# --------------------------------------------------------------------------- #
# Gate
# --------------------------------------------------------------------------- #
class BaselineError(RuntimeError):
    """A committed baseline file is missing or unusable."""


def load_baseline(path: Path) -> dict:
    """Parse a committed baseline, raising a *clear* error when unusable.

    A missing, syntactically broken or structurally wrong baseline file must
    fail the gate with an actionable message (and a non-zero exit), not a
    raw traceback: the fix is always the same — rerun with ``--update``.
    """
    if not path.exists():
        raise BaselineError(f"no committed baseline at {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
        raise BaselineError(f"baseline {path} is unreadable or malformed JSON: {error}") from error
    if not isinstance(payload, dict) or not isinstance(payload.get("metrics"), dict):
        raise BaselineError(
            f"baseline {path} has no 'metrics' table; regenerate it with --update"
        )
    if not isinstance(payload.get("gates", {}), dict):
        raise BaselineError(f"baseline {path} has a malformed 'gates' table")
    return payload


def check_against_baseline(report: dict, baseline: dict, tolerance: float) -> list:
    """Failure messages for every gated metric that regressed past tolerance."""
    failures = []
    skipped = report.get("skipped", {})
    for metric, direction in baseline.get("gates", {}).items():
        if metric in skipped:
            # The fresh report marked this metric unachievable on the
            # current runner (e.g. a pool speedup below 4 cores): recorded
            # for the trajectory, excluded from gating.
            continue
        base_value = baseline["metrics"].get(metric)
        current = report["metrics"].get(metric)
        if base_value is None:
            continue
        if current is None:
            failures.append(f"{report['suite']}: gated metric {metric!r} missing from report")
            continue
        if direction == "higher":
            floor = base_value * (1.0 - tolerance)
            if current < floor:
                failures.append(
                    f"{report['suite']}.{metric}: {current:.3f} regressed below "
                    f"{floor:.3f} (baseline {base_value:.3f}, tolerance {tolerance:.0%})"
                )
        else:  # "lower": smaller is better (reserved for wall-time gates)
            ceiling = base_value * (1.0 + tolerance)
            if current > ceiling:
                failures.append(
                    f"{report['suite']}.{metric}: {current:.3f} regressed above "
                    f"{ceiling:.3f} (baseline {base_value:.3f}, tolerance {tolerance:.0%})"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output-dir", type=Path, default=DEFAULT_OUTPUT_DIR)
    parser.add_argument("--baseline-dir", type=Path, default=DEFAULT_BASELINE_DIR)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument("--check", action="store_true", help="fail on gated regressions")
    parser.add_argument("--update", action="store_true", help="rewrite the committed baselines")
    parser.add_argument(
        "--suite",
        choices=sorted(SUITES) + ["all"],
        default="all",
        help="run a single suite (default: all)",
    )
    args = parser.parse_args(argv)

    names = sorted(SUITES) if args.suite == "all" else [args.suite]
    args.output_dir.mkdir(parents=True, exist_ok=True)

    failures = []
    for name in names:
        print(f"[bench_report] running {name} suite ...", flush=True)
        report = SUITES[name]()
        output_path = args.output_dir / f"BENCH_{name}.json"
        output_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        gated = {metric: report["metrics"][metric] for metric in report["gates"]}
        print(f"[bench_report] {name}: {gated} -> {output_path}")
        if report.get("skipped"):
            print(f"[bench_report] {name}: not gated on this runner: {report['skipped']}")

        if args.update:
            args.baseline_dir.mkdir(parents=True, exist_ok=True)
            baseline_path = args.baseline_dir / f"BENCH_{name}.json"
            merged = dict(report)
            if baseline_path.exists():
                # Gated metrics are conservative *floors*: --update only ever
                # lowers them (a fast workstation must not bake in a bar that
                # a shared CI runner can never clear).  Raising a floor after
                # an intentional improvement is a deliberate act — edit the
                # baseline file by hand.
                try:
                    previous = load_baseline(baseline_path)
                except BaselineError as error:
                    print(f"[bench_report] replacing unusable baseline: {error}")
                    previous = {}
                if "note" in previous:
                    merged["note"] = previous["note"]
                for metric, direction in merged.get("gates", {}).items():
                    old_value = previous.get("metrics", {}).get(metric)
                    if old_value is not None:
                        # "higher"-is-better gates keep the lower floor;
                        # "lower"-is-better gates keep the higher ceiling.
                        relax = min if direction == "higher" else max
                        merged["metrics"] = dict(merged["metrics"])
                        merged["metrics"][metric] = relax(merged["metrics"][metric], old_value)
            baseline_path.write_text(json.dumps(merged, indent=2) + "\n", encoding="utf-8")
            print(
                f"[bench_report] baseline updated: {baseline_path} "
                "(gated floors only ratchet down; raise them by editing the file)"
            )
        elif args.check:
            baseline_path = args.baseline_dir / f"BENCH_{name}.json"
            try:
                baseline = load_baseline(baseline_path)
            except BaselineError as error:
                failures.append(f"{name}: {error} (regenerate with --update)")
                continue
            failures.extend(check_against_baseline(report, baseline, args.tolerance))

    if failures:
        print("[bench_report] REGRESSIONS DETECTED:")
        for failure in failures:
            print(f"  - {failure}")
        print("[bench_report] intentional change? refresh with: python tools/bench_report.py --update")
        return 1
    if args.check:
        print("[bench_report] regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
