#!/usr/bin/env python
"""Append tonight's benchmark metrics to the performance trajectory.

The nightly workflow runs the full benchmark suite and ``bench_report``,
then calls this tool: every ``BENCH_*.json`` in ``benchmarks/_reports/`` is
flattened into one JSON line (timestamp, git commit, suite, metrics) and
appended to ``benchmarks/_reports/trajectory.jsonl``.  The workflow restores
the previous trajectory from its cache before running and uploads the grown
file as an artifact afterwards, so the repository accumulates an actual
performance history instead of a single point per run.

Usage:
    python tools/bench_trajectory.py            # append from _reports/
    python tools/bench_trajectory.py --show     # print the history, newest last
"""

from __future__ import annotations

import argparse
import datetime
import json
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
REPORT_DIR = ROOT / "benchmarks" / "_reports"
TRAJECTORY_PATH = REPORT_DIR / "trajectory.jsonl"


def git_commit() -> str:
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return completed.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def append(argv_reports=None) -> int:
    reports = sorted(REPORT_DIR.glob("BENCH_*.json"))
    if not reports:
        print(f"[bench_trajectory] no BENCH_*.json found in {REPORT_DIR}; run bench_report first")
        return 1
    stamp = datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds")
    commit = git_commit()
    REPORT_DIR.mkdir(parents=True, exist_ok=True)
    appended = 0
    with TRAJECTORY_PATH.open("a", encoding="utf-8") as handle:
        for path in reports:
            try:
                report = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as error:
                print(f"[bench_trajectory] skipping unreadable {path.name}: {error}")
                continue
            row = {
                "timestamp": stamp,
                "commit": commit,
                "suite": report.get("suite", path.stem),
                "environment": report.get("environment", {}),
                "metrics": report.get("metrics", {}),
                # Metrics this runner could not meaningfully exhibit (e.g.
                # pool speedups below 4 cores): kept in the row, but tagged
                # so trajectory readers don't chart them as regressions.
                "skipped": report.get("skipped", {}),
            }
            handle.write(json.dumps(row, sort_keys=True) + "\n")
            appended += 1
    print(f"[bench_trajectory] appended {appended} suite row(s) to {TRAJECTORY_PATH}")
    return 0


def show() -> int:
    if not TRAJECTORY_PATH.exists():
        print(f"[bench_trajectory] no trajectory yet at {TRAJECTORY_PATH}")
        return 1
    for line in TRAJECTORY_PATH.read_text(encoding="utf-8").splitlines():
        row = json.loads(line)
        metrics = " ".join(f"{key}={value}" for key, value in sorted(row["metrics"].items()))
        print(f"{row['timestamp']} {row['commit']} {row['suite']}: {metrics}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--show", action="store_true", help="print the history instead of appending")
    args = parser.parse_args(argv)
    return show() if args.show else append()


if __name__ == "__main__":
    sys.exit(main())
