#!/usr/bin/env python
"""Coverage gate: run the tier-1 suite under ``pytest --cov`` and enforce a floor.

The committed baseline (``benchmarks/baselines/coverage.json``) records the
statement-coverage percentage of ``src/repro`` and a drop tolerance; the
gate fails when the measured percentage falls more than the tolerance below
the baseline.  That keeps the growing pipeline honest — a PR that lands a
subsystem without tests shows up as a multi-point coverage drop.

Usage:
    python tools/coverage_gate.py             # measure + enforce
    python tools/coverage_gate.py --update    # measure + rewrite the baseline
    python tools/coverage_gate.py --require   # fail (not skip) without pytest-cov

Without ``pytest-cov`` installed the gate *skips* with a warning (exit 0) so
`make ci` stays runnable in minimal environments; CI passes ``--require``.
The XML report lands in ``benchmarks/_reports/coverage.xml`` for upload as a
workflow artifact.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import xml.etree.ElementTree as ElementTree
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = ROOT / "benchmarks" / "baselines" / "coverage.json"
XML_PATH = ROOT / "benchmarks" / "_reports" / "coverage.xml"
DEFAULT_DROP_TOLERANCE = 2.0


def have_pytest_cov() -> bool:
    try:
        import pytest_cov  # noqa: F401

        return True
    except ImportError:
        return False


def measure() -> float:
    """Run the suite under coverage; returns the line percentage."""
    XML_PATH.parent.mkdir(parents=True, exist_ok=True)
    command = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        "-p",
        "no:cacheprovider",
        "--cov=repro",
        f"--cov-report=xml:{XML_PATH}",
        "--cov-report=term",
    ]
    completed = subprocess.run(command, cwd=ROOT)
    if completed.returncode != 0:
        raise SystemExit(f"[coverage_gate] test suite failed (exit {completed.returncode})")
    try:
        root = ElementTree.parse(XML_PATH).getroot()
        line_rate = float(root.attrib["line-rate"])
    except (OSError, KeyError, ValueError, ElementTree.ParseError) as error:
        raise SystemExit(f"[coverage_gate] could not parse {XML_PATH}: {error}") from error
    return round(100.0 * line_rate, 2)


def load_baseline() -> dict:
    if not BASELINE_PATH.exists():
        raise SystemExit(
            f"[coverage_gate] no committed baseline at {BASELINE_PATH}; "
            "create one with --update"
        )
    try:
        payload = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
        float(payload["line_percent"])
    except (ValueError, KeyError, TypeError, json.JSONDecodeError) as error:
        raise SystemExit(
            f"[coverage_gate] baseline {BASELINE_PATH} is malformed ({error}); "
            "regenerate with --update"
        ) from error
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true", help="rewrite the committed baseline")
    parser.add_argument(
        "--require",
        action="store_true",
        help="fail instead of skipping when pytest-cov is not installed",
    )
    args = parser.parse_args(argv)

    if not have_pytest_cov():
        message = "[coverage_gate] pytest-cov not installed; "
        if args.require:
            print(message + "failing (--require)")
            return 1
        print(message + "skipping the coverage gate (install '.[dev]' to enable)")
        return 0

    percent = measure()
    print(f"[coverage_gate] measured statement coverage: {percent:.2f}%")

    if args.update:
        baseline = {
            "line_percent": percent,
            "drop_tolerance": DEFAULT_DROP_TOLERANCE,
            "note": (
                "Committed floor for `pytest --cov=repro` statement coverage; "
                "the gate fails below line_percent - drop_tolerance. Refresh "
                "with: python tools/coverage_gate.py --update"
            ),
        }
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
        print(f"[coverage_gate] baseline updated: {BASELINE_PATH} ({percent:.2f}%)")
        return 0

    baseline = load_baseline()
    floor = float(baseline["line_percent"]) - float(
        baseline.get("drop_tolerance", DEFAULT_DROP_TOLERANCE)
    )
    if percent < floor:
        print(
            f"[coverage_gate] COVERAGE DROPPED: {percent:.2f}% is below the floor "
            f"{floor:.2f}% (baseline {baseline['line_percent']}% - "
            f"{baseline.get('drop_tolerance', DEFAULT_DROP_TOLERANCE)}pt tolerance)"
        )
        print("[coverage_gate] add tests, or refresh intentionally with --update")
        return 1
    print(f"[coverage_gate] coverage gate passed (floor {floor:.2f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
