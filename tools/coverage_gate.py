#!/usr/bin/env python
"""Coverage gate: run the tier-1 suite under ``pytest --cov`` and enforce a floor.

The committed baseline (``benchmarks/baselines/coverage.json``) records the
statement-coverage percentage of ``src/repro`` and a drop tolerance; the
gate fails when the measured percentage falls more than the tolerance below
the baseline.  That keeps the growing pipeline honest — a PR that lands a
subsystem without tests shows up as a multi-point coverage drop.

Usage:
    python tools/coverage_gate.py             # measure + enforce
    python tools/coverage_gate.py --update    # measure + rewrite the baseline
    python tools/coverage_gate.py --require   # fail (not skip) without pytest-cov
    python tools/coverage_gate.py --builtin   # measure with the built-in tracer

Without ``pytest-cov`` installed the gate *skips* with a warning (exit 0) so
`make ci` stays runnable in minimal environments; CI passes ``--require``.
The XML report lands in ``benchmarks/_reports/coverage.xml`` for upload as a
workflow artifact.

``--builtin`` measures with a dependency-free ``sys.settrace`` tracer on the
same statement basis (executable lines from compiled code objects, in-process
tier-1 run).  It under-reads ``pytest --cov`` slightly — line-level ``pragma:
no cover`` markers are honoured but block-level exclusions are not, and
worker subprocesses are untraced — so a floor calibrated from it is
conservative for the pytest-cov CI run.  The baseline records which measurer
produced it (``measured_with``).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import threading
import xml.etree.ElementTree as ElementTree
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC_PACKAGE = ROOT / "src" / "repro"
BASELINE_PATH = ROOT / "benchmarks" / "baselines" / "coverage.json"
XML_PATH = ROOT / "benchmarks" / "_reports" / "coverage.xml"
DEFAULT_DROP_TOLERANCE = 2.0


def have_pytest_cov() -> bool:
    try:
        import pytest_cov  # noqa: F401

        return True
    except ImportError:
        return False


def measure() -> float:
    """Run the suite under coverage; returns the line percentage."""
    XML_PATH.parent.mkdir(parents=True, exist_ok=True)
    command = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        "-p",
        "no:cacheprovider",
        "--cov=repro",
        f"--cov-report=xml:{XML_PATH}",
        "--cov-report=term",
    ]
    completed = subprocess.run(command, cwd=ROOT)
    if completed.returncode != 0:
        raise SystemExit(f"[coverage_gate] test suite failed (exit {completed.returncode})")
    try:
        root = ElementTree.parse(XML_PATH).getroot()
        line_rate = float(root.attrib["line-rate"])
    except (OSError, KeyError, ValueError, ElementTree.ParseError) as error:
        raise SystemExit(f"[coverage_gate] could not parse {XML_PATH}: {error}") from error
    return round(100.0 * line_rate, 2)


def _executable_lines(path: Path) -> set:
    """Statement lines of one source file, from its compiled code objects.

    Walks nested code objects (functions, classes, comprehensions) and
    collects every line that carries bytecode — the same statement basis
    coverage.py reports on.  Lines marked ``pragma: no cover`` are excluded
    (line-level only; the block-level exclusion coverage.py additionally
    applies makes the builtin number read *lower*, never higher).
    """
    source = path.read_text(encoding="utf-8")
    excluded = {
        number
        for number, line in enumerate(source.splitlines(), start=1)
        if "pragma: no cover" in line
    }
    lines: set = set()

    def walk(code) -> None:
        for _, _, line in code.co_lines():
            if line is not None and line not in excluded:
                lines.add(line)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                walk(const)

    walk(compile(source, str(path), "exec"))
    # Module/class docstrings compile to a line but are not statements the
    # way coverage.py counts them after its docstring handling; keeping them
    # is harmless (they execute at import, so they are always covered).
    return lines


def measure_builtin() -> float:
    """Dependency-free statement coverage of the in-process tier-1 run.

    A ``sys.settrace`` hook records executed lines, pruned at call
    granularity to frames under ``src/repro`` so the suite does not pay
    line-tracing overhead outside the measured package.  Worker *threads*
    are traced (``threading.settrace``); worker *processes* are not, which
    again only under-reads.
    """
    import pytest

    src_str = str(SRC_PACKAGE)
    files = sorted(SRC_PACKAGE.rglob("*.py"))
    executable = {str(path): _executable_lines(path) for path in files}
    executed: dict = {name: set() for name in executable}

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if event == "call":
            return tracer if filename.startswith(src_str) else None
        if event == "line":
            hit = executed.get(filename)
            if hit is not None:
                hit.add(frame.f_lineno)
        return tracer

    if str(ROOT / "src") not in sys.path:
        sys.path.insert(0, str(ROOT / "src"))
    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        code = pytest.main(["-q", "-p", "no:cacheprovider", str(ROOT / "tests")])
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if code != 0:
        raise SystemExit(f"[coverage_gate] test suite failed (exit {code})")
    total = sum(len(lines) for lines in executable.values())
    hit = sum(
        len(executed[name] & lines) for name, lines in executable.items()
    )
    if total == 0:
        raise SystemExit("[coverage_gate] found no executable lines under src/repro")
    return round(100.0 * hit / total, 2)


def load_baseline() -> dict:
    if not BASELINE_PATH.exists():
        raise SystemExit(
            f"[coverage_gate] no committed baseline at {BASELINE_PATH}; "
            "create one with --update"
        )
    try:
        payload = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
        float(payload["line_percent"])
    except (ValueError, KeyError, TypeError, json.JSONDecodeError) as error:
        raise SystemExit(
            f"[coverage_gate] baseline {BASELINE_PATH} is malformed ({error}); "
            "regenerate with --update"
        ) from error
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true", help="rewrite the committed baseline")
    parser.add_argument(
        "--require",
        action="store_true",
        help="fail instead of skipping when pytest-cov is not installed",
    )
    parser.add_argument(
        "--builtin",
        action="store_true",
        help="measure with the dependency-free settrace tracer instead of pytest-cov",
    )
    args = parser.parse_args(argv)

    if args.builtin:
        measured_with = "builtin-settrace"
        percent = measure_builtin()
    else:
        if not have_pytest_cov():
            message = "[coverage_gate] pytest-cov not installed; "
            if args.require:
                print(message + "failing (--require)")
                return 1
            print(
                message
                + "skipping the coverage gate (install '.[dev]', or run with --builtin)"
            )
            return 0
        measured_with = "pytest-cov"
        percent = measure()
    print(
        f"[coverage_gate] measured statement coverage: {percent:.2f}% ({measured_with})"
    )

    if args.update:
        baseline = {
            "line_percent": percent,
            "drop_tolerance": DEFAULT_DROP_TOLERANCE,
            "measured_with": measured_with,
            "note": (
                "Committed floor for statement coverage of src/repro over the "
                "tier-1 suite; the gate fails below line_percent - drop_tolerance. "
                "measured_with records the measurer: pytest-cov (the CI run) or "
                "the built-in settrace tracer (same statement basis, reads equal "
                "or slightly lower than pytest-cov, so the floor stays "
                "conservative). Refresh with: python tools/coverage_gate.py "
                "--update [--builtin]"
            ),
        }
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
        print(f"[coverage_gate] baseline updated: {BASELINE_PATH} ({percent:.2f}%)")
        return 0

    baseline = load_baseline()
    floor = float(baseline["line_percent"]) - float(
        baseline.get("drop_tolerance", DEFAULT_DROP_TOLERANCE)
    )
    if percent < floor:
        print(
            f"[coverage_gate] COVERAGE DROPPED: {percent:.2f}% is below the floor "
            f"{floor:.2f}% (baseline {baseline['line_percent']}% - "
            f"{baseline.get('drop_tolerance', DEFAULT_DROP_TOLERANCE)}pt tolerance)"
        )
        print("[coverage_gate] add tests, or refresh intentionally with --update")
        return 1
    print(f"[coverage_gate] coverage gate passed (floor {floor:.2f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
