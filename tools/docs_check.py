#!/usr/bin/env python
"""Documentation checks: execute README code blocks and lint doc links.

Two rules keep the docs from rotting:

1. every fenced ``python`` code block in the checked Markdown files must
   execute without raising (blocks are run independently, with ``src/`` on
   the path) — so the README's examples break CI instead of readers;
2. every relative Markdown link ``[text](target)`` must point at a file or
   directory that exists in the repository.

Usage:  python tools/docs_check.py  (or ``make docs-check``)
Exit code 0 on success, 1 with a report on failure.
"""

from __future__ import annotations

import re
import sys
import traceback
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
CHECKED_FILES = [
    "README.md",
    "PAPER.md",
    "docs/ARCHITECTURE.md",
    "docs/MIGRATION.md",
    "docs/OBSERVABILITY.md",
]

_CODE_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)
# [text](target) — excluding images and in-page anchors; stop at the first
# closing parenthesis, which is fine for the plain relative paths we use.
_LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)#\s]+)[^)]*\)")


def run_code_blocks(path: Path) -> list:
    """Execute each ``python`` fence of ``path``; return failure messages."""
    failures = []
    text = path.read_text(encoding="utf-8")
    for number, match in enumerate(_CODE_BLOCK.finditer(text), start=1):
        code = match.group(1)
        namespace = {"__name__": f"{path.stem}_block_{number}"}
        try:
            exec(compile(code, f"{path.name}[python block {number}]", "exec"), namespace)
        except Exception:
            failures.append(
                f"{path.name}: python block {number} failed:\n"
                + "".join(traceback.format_exc(limit=3))
            )
    return failures


def lint_links(path: Path) -> list:
    """Check that every relative link in ``path`` resolves to a real path."""
    failures = []
    text = path.read_text(encoding="utf-8")
    for match in _LINK.finditer(text):
        target = match.group(1)
        if "://" in target or target.startswith("mailto:"):
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            failures.append(f"{path.name}: broken link -> {target}")
    return failures


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    failures = []
    for name in CHECKED_FILES:
        path = ROOT / name
        if not path.exists():
            failures.append(f"missing documentation file: {name}")
            continue
        failures.extend(run_code_blocks(path))
        failures.extend(lint_links(path))
    if failures:
        print(f"docs-check: {len(failures)} problem(s)")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"docs-check: OK ({len(CHECKED_FILES)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
