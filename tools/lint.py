#!/usr/bin/env python
"""Lint/typecheck driver for ``make lint`` — locally and in CI.

Runs, in order:

1. ``python -m compileall`` over the whole tree — the floor that always
   runs, even on machines without the dev tools installed;
2. ``ruff check`` with the configuration in ``pyproject.toml``;
3. ``mypy`` over the packages scoped in ``pyproject.toml``.

ruff and mypy are exercised when importable and *skipped with a notice*
otherwise: the target container bakes in only the core Python toolchain and
must not pip-install ad hoc, while CI installs the ``dev`` extra and runs
all three.  Exit code is non-zero if any executed stage fails — a skipped
tool is not a failure, a failing one always is.
"""

from __future__ import annotations

import subprocess
import sys
from importlib.util import find_spec
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
TARGETS = ["src", "tools", "tests", "benchmarks", "examples"]


def _run(label: str, command: list) -> bool:
    print(f"[lint] {label}: {' '.join(command)}", flush=True)
    result = subprocess.run(command, cwd=ROOT)
    if result.returncode != 0:
        print(f"[lint] {label} FAILED (exit {result.returncode})")
        return False
    return True


def main() -> int:
    ok = True

    ok &= _run(
        "compileall",
        [sys.executable, "-m", "compileall", "-q", *TARGETS],
    )

    if find_spec("ruff") is not None:
        ok &= _run("ruff", [sys.executable, "-m", "ruff", "check", *TARGETS])
    else:
        print("[lint] ruff not installed — skipped (CI installs it via the 'dev' extra)")

    if find_spec("mypy") is not None:
        # Scope comes from [tool.mypy] in pyproject.toml.
        ok &= _run("mypy", [sys.executable, "-m", "mypy"])
    else:
        print("[lint] mypy not installed — skipped (CI installs it via the 'dev' extra)")

    print("[lint] OK" if ok else "[lint] failures above")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
